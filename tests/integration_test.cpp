// End-to-end integration tests across the full stack: provision a cloud,
// deploy VMs, run guest workloads, checkpoint, destroy, restart, and verify
// state — including the paper's headline property that file-system I/O
// performed after the last checkpoint is rolled back by the restore.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/blobcr.h"
#include "sim/sim.h"

namespace blobcr::core {
namespace {

using common::Buffer;
using sim::Task;

CloudConfig tiny_cfg(Backend backend, int replication = 1) {
  CloudConfig cfg;
  cfg.compute_nodes = 4;
  cfg.metadata_nodes = 2;
  cfg.backend = backend;
  cfg.replication = replication;
  cfg.os = vm::GuestOsConfig::test_tiny();
  cfg.vm.os_ram_bytes = 20 * common::kMB;
  cfg.chunk_size = 256 * 1024;
  cfg.qcow_cluster_size = 64 * 1024;
  return cfg;
}

/// Guest workload: write a state file and a pre-checkpoint log line, sync.
Task<> write_state(vm::VmInstance* vm, std::uint64_t seed) {
  guestfs::SimpleFs* fs = vm->fs();
  co_await fs->write_file("/data/state.bin", Buffer::pattern(300'000, seed));
  const guestfs::Fd log = fs->open("/data/app.log", true, true);
  co_await fs->write(log, Buffer::from_string("pre-checkpoint line\n"));
  fs->close(log);
  co_await fs->sync();
}

/// Post-checkpoint damage that a restore must roll back.
Task<> damage_state(vm::VmInstance* vm) {
  guestfs::SimpleFs* fs = vm->fs();
  const guestfs::Fd log = fs->open("/data/app.log", false, true);
  co_await fs->write(log, Buffer::from_string("POST-checkpoint line\n"));
  fs->close(log);
  co_await fs->write_file("/data/state.bin", Buffer::pattern(300'000, 999));
  co_await fs->sync();
}

struct VerifyResult {
  bool state_ok = false;
  std::string log_content;
};

Task<> verify_state(vm::VmInstance* vm, std::uint64_t seed,
                    VerifyResult* out) {
  guestfs::SimpleFs* fs = vm->fs();
  const Buffer state = co_await fs->read_file("/data/state.bin");
  out->state_ok = (state == Buffer::pattern(300'000, seed));
  const Buffer log = co_await fs->read_file("/data/app.log");
  out->log_content = log.to_string();
}

class CheckpointRestartTest : public ::testing::TestWithParam<Backend> {};

TEST_P(CheckpointRestartTest, FullLifecycleRestoresStateAndRollsBackIo) {
  const Backend backend = GetParam();
  Cloud cloud(tiny_cfg(backend));
  std::vector<VerifyResult> results(2);

  cloud.run([](Cloud* cl, std::vector<VerifyResult>* out) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 2);
    co_await dep.deploy_and_boot();

    // Guest workload, synced into the virtual disks.
    co_await write_state(&dep.vm(0), 1000);
    co_await write_state(&dep.vm(1), 1001);

    // Global checkpoint.
    GlobalCheckpoint ckpt = co_await dep.checkpoint_all();
    for (const auto& s : ckpt.snapshots) EXPECT_GT(s.bytes, 0u);

    // Post-checkpoint writes that must vanish after restore.
    co_await damage_state(&dep.vm(0));
    co_await damage_state(&dep.vm(1));

    // Catastrophic failure; redeploy on different nodes (shift by 2).
    dep.destroy_all();
    co_await dep.restart_from(ckpt, /*node_offset=*/2);

    co_await verify_state(&dep.vm(0), 1000, &(*out)[0]);
    co_await verify_state(&dep.vm(1), 1001, &(*out)[1]);
  }(&cloud, &results));

  for (const auto& r : results) {
    EXPECT_TRUE(r.state_ok);
    // The marquee property: post-checkpoint I/O has been rolled back.
    EXPECT_EQ(r.log_content, "pre-checkpoint line\n");
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, CheckpointRestartTest,
                         ::testing::Values(Backend::BlobCR,
                                           Backend::Qcow2Disk));

TEST(QcowFullIntegrationTest, ResumeRollsDiskBackWithoutReboot) {
  Cloud cloud(tiny_cfg(Backend::Qcow2Full));
  VerifyResult result;
  sim::Duration restart_time = 0;

  cloud.run([](Cloud* cl, VerifyResult* out,
               sim::Duration* rt) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 1);
    co_await dep.deploy_and_boot();
    co_await write_state(&dep.vm(0), 2000);
    GlobalCheckpoint ckpt = co_await dep.checkpoint_all();
    co_await damage_state(&dep.vm(0));
    dep.destroy_all();

    const sim::Time t0 = cl->simulation().now();
    co_await dep.restart_from(ckpt, 2);
    *rt = cl->simulation().now() - t0;

    // qcow2-full resumes without reboot: no mounted fs on the new VM, but
    // the rolled-back disk must contain exactly the checkpointed files.
    auto fs = co_await guestfs::SimpleFs::mount(dep.instance(0).device());
    const Buffer state = co_await fs->read_file("/data/state.bin");
    out->state_ok = (state == Buffer::pattern(300'000, 2000));
    const Buffer log = co_await fs->read_file("/data/app.log");
    out->log_content = log.to_string();
  }(&cloud, &result, &restart_time));

  EXPECT_TRUE(result.state_ok);
  EXPECT_EQ(result.log_content, "pre-checkpoint line\n");
  EXPECT_GT(restart_time, 0);
}

TEST(SuccessiveCheckpointTest, BlobcrShipsDeltasQcowShipsEverything) {
  // Two clouds, same workload: three checkpoints with a small dirty set in
  // between. BlobCR's 2nd/3rd snapshots stay small; qcow2-disk re-ships the
  // whole (growing) container every time.
  std::vector<std::uint64_t> blobcr_sizes;
  std::vector<std::uint64_t> qcow_sizes;

  for (const Backend backend : {Backend::BlobCR, Backend::Qcow2Disk}) {
    Cloud cloud(tiny_cfg(backend));
    auto* sizes =
        backend == Backend::BlobCR ? &blobcr_sizes : &qcow_sizes;
    cloud.run([](Cloud* cl, std::vector<std::uint64_t>* out) -> Task<> {
      co_await cl->provision_base_image();
      Deployment dep(*cl, 1);
      co_await dep.deploy_and_boot();
      for (int round = 0; round < 3; ++round) {
        guestfs::SimpleFs* fs = dep.vm(0).fs();
        co_await fs->write_file(
            "/data/state.bin",
            Buffer::pattern(400'000, static_cast<std::uint64_t>(round)));
        co_await fs->sync();
        const InstanceSnapshot snap = co_await dep.snapshot_instance(0);
        out->push_back(snap.bytes);
      }
    }(&cloud, sizes));
  }

  ASSERT_EQ(blobcr_sizes.size(), 3u);
  ASSERT_EQ(qcow_sizes.size(), 3u);
  // BlobCR: first checkpoint carries boot noise + state; later ones only the
  // rewritten state (and FS metadata churn).
  EXPECT_LT(blobcr_sizes[1], blobcr_sizes[0]);
  // qcow2-disk containers only grow.
  EXPECT_GE(qcow_sizes[1], qcow_sizes[0]);
  EXPECT_GE(qcow_sizes[2], qcow_sizes[1]);
  // And each later BlobCR snapshot is far smaller than the qcow copy.
  EXPECT_LT(blobcr_sizes[2] * 2, qcow_sizes[2]);
}

TEST(FailureInjectionTest, ReplicatedRepositorySurvivesNodeLoss) {
  Cloud cloud(tiny_cfg(Backend::BlobCR, /*replication=*/2));
  VerifyResult result;

  cloud.run([](Cloud* cl, VerifyResult* out) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 1);
    co_await dep.deploy_and_boot();
    co_await write_state(&dep.vm(0), 3000);
    GlobalCheckpoint ckpt = co_await dep.checkpoint_all();

    // Fail-stop the instance's node: VM dies AND the data provider on that
    // node loses all its chunks.
    dep.fail_instance(0);
    co_await dep.restart_from(ckpt, 1);
    co_await verify_state(&dep.vm(0), 3000, out);
  }(&cloud, &result));

  EXPECT_TRUE(result.state_ok);
  EXPECT_EQ(result.log_content, "pre-checkpoint line\n");
}

TEST(FailureInjectionTest, UnreplicatedRepositoryLosesData) {
  Cloud cloud(tiny_cfg(Backend::BlobCR, /*replication=*/1));
  bool restore_failed = false;

  cloud.run([](Cloud* cl, bool* failed) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 1);
    co_await dep.deploy_and_boot();
    co_await write_state(&dep.vm(0), 4000);
    GlobalCheckpoint ckpt = co_await dep.checkpoint_all();
    dep.fail_instance(0);
    bool threw = false;
    try {
      co_await dep.restart_from(ckpt, 1);
      VerifyResult r;
      co_await verify_state(&dep.vm(0), 4000, &r);
      threw = !r.state_ok;
    } catch (const std::exception&) {
      threw = true;
    }
    *failed = threw;
  }(&cloud, &restore_failed));

  // With replication 1, the snapshot chunks on the failed node are gone.
  EXPECT_TRUE(restore_failed);
}

TEST(DeploymentTest, BootFetchesOnlyHotContent) {
  // Lazy transfer: booting reads far less than the full image.
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  std::uint64_t fetched = 0;
  std::uint64_t image = 0;

  cloud.run([](Cloud* cl, std::uint64_t* f, std::uint64_t* img) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 2);
    co_await dep.deploy_and_boot();
    *f = dep.boot_remote_bytes();
    *img = cl->image_size();
  }(&cloud, &fetched, &image));

  EXPECT_GT(fetched, 0u);
  EXPECT_LT(fetched, image);  // per-instance average is well under the image
}

TEST(DeploymentTest, PlacementRefusesMoreInstancesThanComputeNodes) {
  // Regression: compute_node() used to wrap `i % compute_nodes`, silently
  // co-locating two instances on one node — a single node failure would
  // take out two "independent" ranks and their caches. Oversubscription is
  // now refused at construction; a full-width deployment still places.
  Cloud cloud(tiny_cfg(Backend::BlobCR));  // 4 compute nodes
  EXPECT_THROW(Deployment(cloud, 5), std::invalid_argument);
  const Deployment dep(cloud, 4);
  EXPECT_EQ(dep.size(), 4u);
}

TEST(DeploymentTest, SnapshotMappingIsRecorded) {
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  GlobalCheckpoint collected;

  cloud.run([](Cloud* cl, GlobalCheckpoint* out) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 2);
    co_await dep.deploy_and_boot();
    co_await write_state(&dep.vm(0), 1);
    co_await write_state(&dep.vm(1), 2);
    (void)co_await dep.checkpoint_all();
    *out = dep.collect_last_snapshots();
  }(&cloud, &collected));

  ASSERT_EQ(collected.snapshots.size(), 2u);
  EXPECT_NE(collected.snapshots[0].image, collected.snapshots[1].image);
  for (const auto& s : collected.snapshots) {
    EXPECT_NE(s.image, 0u);
    EXPECT_GE(s.version, 2u);  // v1 = clone, v2+ = commits
  }
}

}  // namespace
}  // namespace blobcr::core
