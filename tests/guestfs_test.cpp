// Tests for SimpleFs: on-disk persistence (mount decodes what sync wrote),
// page-cache semantics (unsynced data does not survive remount — the reason
// the paper's checkpoint protocol calls sync), namespace ops, and a property
// test against a reference model with periodic remounts.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "guestfs/simplefs.h"
#include "img/mem_device.h"
#include "sim/sim.h"

namespace blobcr::guestfs {
namespace {

using common::Buffer;
using sim::Simulation;
using sim::Task;

struct TestFs {
  Simulation sim;
  img::MemDevice dev{64 * 1024 * 1024};

  void run(Task<> t) {
    auto p = sim.spawn("test", std::move(t));
    sim.run();
    if (p->error()) std::rethrow_exception(p->error());
  }

  FsConfig small_cfg() {
    FsConfig cfg;
    cfg.block_size = 4096;
    cfg.metadata_blocks = 128;
    return cfg;
  }
};

TEST(SimpleFsTest, MkfsMountEmpty) {
  TestFs t;
  bool ok = false;
  t.run([](TestFs& tf, bool& result) -> Task<> {
    co_await SimpleFs::mkfs(tf.dev, tf.small_cfg());
    auto fs = co_await SimpleFs::mount(tf.dev);
    result = fs->exists("/") && fs->readdir("/").empty();
  }(t, ok));
  EXPECT_TRUE(ok);
}

TEST(SimpleFsTest, WriteReadRoundTrip) {
  TestFs t;
  bool ok = false;
  t.run([](TestFs& tf, bool& result) -> Task<> {
    co_await SimpleFs::mkfs(tf.dev, tf.small_cfg());
    auto fs = co_await SimpleFs::mount(tf.dev);
    co_await fs->write_file("/hello.txt", Buffer::from_string("hello world"));
    const Buffer back = co_await fs->read_file("/hello.txt");
    result = (back.to_string() == "hello world");
  }(t, ok));
  EXPECT_TRUE(ok);
}

TEST(SimpleFsTest, SyncedDataSurvivesRemount) {
  TestFs t;
  bool ok = false;
  t.run([](TestFs& tf, bool& result) -> Task<> {
    co_await SimpleFs::mkfs(tf.dev, tf.small_cfg());
    {
      auto fs = co_await SimpleFs::mount(tf.dev);
      co_await fs->write_file("/data.bin", Buffer::pattern(100'000, 1));
      co_await fs->sync();
    }
    auto fs2 = co_await SimpleFs::mount(tf.dev);
    const Buffer back = co_await fs2->read_file("/data.bin");
    result = (back == Buffer::pattern(100'000, 1));
  }(t, ok));
  EXPECT_TRUE(ok);
}

TEST(SimpleFsTest, UnsyncedDataLostOnRemount) {
  TestFs t;
  bool file_missing = false;
  t.run([](TestFs& tf, bool& result) -> Task<> {
    co_await SimpleFs::mkfs(tf.dev, tf.small_cfg());
    {
      auto fs = co_await SimpleFs::mount(tf.dev);
      co_await fs->write_file("/volatile.bin", Buffer::pattern(5000, 2));
      // no sync: metadata and pages stay in the page cache
    }
    auto fs2 = co_await SimpleFs::mount(tf.dev);
    result = !fs2->exists("/volatile.bin");
  }(t, file_missing));
  EXPECT_TRUE(file_missing);
}

TEST(SimpleFsTest, AppendMovesCursor) {
  TestFs t;
  bool ok = false;
  t.run([](TestFs& tf, bool& result) -> Task<> {
    co_await SimpleFs::mkfs(tf.dev, tf.small_cfg());
    auto fs = co_await SimpleFs::mount(tf.dev);
    const Fd fd = fs->open("/log", /*create=*/true);
    co_await fs->write(fd, Buffer::from_string("line1\n"));
    co_await fs->write(fd, Buffer::from_string("line2\n"));
    fs->close(fd);
    const Fd fd2 = fs->open("/log", false, /*append_mode=*/true);
    co_await fs->write(fd2, Buffer::from_string("line3\n"));
    fs->close(fd2);
    const Buffer all = co_await fs->read_file("/log");
    result = (all.to_string() == "line1\nline2\nline3\n");
  }(t, ok));
  EXPECT_TRUE(ok);
}

TEST(SimpleFsTest, PartialOverwriteReadModifyWrite) {
  TestFs t;
  bool ok = false;
  t.run([](TestFs& tf, bool& result) -> Task<> {
    co_await SimpleFs::mkfs(tf.dev, tf.small_cfg());
    auto fs = co_await SimpleFs::mount(tf.dev);
    co_await fs->write_file("/f", Buffer::pattern(10'000, 3));
    const Fd fd = fs->open("/f");
    co_await fs->pwrite(fd, 5000, Buffer::pattern(100, 4));
    fs->close(fd);
    Buffer expect = Buffer::pattern(10'000, 3);
    expect.overwrite(5000, Buffer::pattern(100, 4));
    const Buffer back = co_await fs->read_file("/f");
    result = (back == expect);
  }(t, ok));
  EXPECT_TRUE(ok);
}

TEST(SimpleFsTest, DirectoryOperations) {
  TestFs t;
  bool ok = false;
  t.run([](TestFs& tf, bool& result) -> Task<> {
    co_await SimpleFs::mkfs(tf.dev, tf.small_cfg());
    auto fs = co_await SimpleFs::mount(tf.dev);
    fs->mkdir("/a");
    fs->mkdir("/a/b");
    co_await fs->write_file("/a/b/c.txt", Buffer::from_string("x"));
    const auto names = fs->readdir("/a/b");
    const auto st = fs->stat("/a/b/c.txt");
    result = names.size() == 1 && names[0] == "c.txt" && st.size == 1 &&
             !st.is_dir && fs->stat("/a").is_dir;
  }(t, ok));
  EXPECT_TRUE(ok);
}

TEST(SimpleFsTest, UnlinkFreesSpaceForReuse) {
  TestFs t;
  bool ok = false;
  t.run([](TestFs& tf, bool& result) -> Task<> {
    FsConfig cfg = tf.small_cfg();
    co_await SimpleFs::mkfs(tf.dev, cfg);
    auto fs = co_await SimpleFs::mount(tf.dev);
    // Fill most of the FS, delete, then the space must be reusable.
    const std::uint64_t big = 40ULL * 1024 * 1024;
    co_await fs->write_file("/big1", Buffer::phantom(big));
    fs->unlink("/big1");
    co_await fs->write_file("/big2", Buffer::phantom(big));
    result = fs->exists("/big2") && !fs->exists("/big1");
  }(t, ok));
  EXPECT_TRUE(ok);
}

TEST(SimpleFsTest, FullDiskThrows) {
  TestFs t;
  bool threw = false;
  t.run([](TestFs& tf, bool& result) -> Task<> {
    co_await SimpleFs::mkfs(tf.dev, tf.small_cfg());
    auto fs = co_await SimpleFs::mount(tf.dev);
    bool caught = false;
    try {
      co_await fs->write_file("/too-big", Buffer::phantom(1ULL << 40));
    } catch (const FsError&) {
      caught = true;
    }
    result = caught;
  }(t, threw));
  EXPECT_TRUE(threw);
}

TEST(SimpleFsTest, ErrorsOnBadPaths) {
  TestFs t;
  int caught = 0;
  t.run([](TestFs& tf, int& count) -> Task<> {
    co_await SimpleFs::mkfs(tf.dev, tf.small_cfg());
    auto fs = co_await SimpleFs::mount(tf.dev);
    try {
      fs->open("/missing");
    } catch (const FsError&) {
      ++count;
    }
    fs->mkdir("/d");
    try {
      fs->mkdir("/d");
    } catch (const FsError&) {
      ++count;
    }
    co_await fs->write_file("/d/f", Buffer::from_string("x"));
    try {
      fs->unlink("/d");
    } catch (const FsError&) {
      ++count;
    }
  }(t, caught));
  EXPECT_EQ(caught, 3);
}

TEST(SimpleFsTest, ScatterSpreadsFiles) {
  TestFs t;
  std::size_t extents_scattered = 0;
  t.run([](TestFs& tf, std::size_t& out) -> Task<> {
    FsConfig cfg = tf.small_cfg();
    cfg.alloc_scatter_blocks = 64;
    co_await SimpleFs::mkfs(tf.dev, cfg);
    auto fs = co_await SimpleFs::mount(tf.dev);
    std::uint64_t last_begin = 0;
    bool monotone = true;
    for (int i = 0; i < 8; ++i) {
      const std::string path = "/f" + std::to_string(i);
      co_await fs->write_file(path, Buffer::pattern(64 * 1024, i));
      const auto st = fs->stat(path);
      (void)st;
      (void)last_begin;
      (void)monotone;
    }
    // With scattering, the 8 files do not form one contiguous run: count
    // distinct extents overall.
    std::size_t total_extents = 0;
    for (int i = 0; i < 8; ++i) {
      total_extents += fs->stat("/f" + std::to_string(i)).extent_count;
    }
    out = total_extents;
  }(t, extents_scattered));
  EXPECT_GE(extents_scattered, 8u);
}

TEST(SimpleFsTest, PhantomContentWithRealMetadata) {
  TestFs t;
  bool ok = false;
  t.run([](TestFs& tf, bool& result) -> Task<> {
    co_await SimpleFs::mkfs(tf.dev, tf.small_cfg());
    {
      auto fs = co_await SimpleFs::mount(tf.dev);
      co_await fs->write_file("/ph.bin", Buffer::phantom(1'000'000));
      co_await fs->sync();
    }
    // Remount decodes real metadata even though the file payload is phantom.
    auto fs2 = co_await SimpleFs::mount(tf.dev);
    const Buffer back = co_await fs2->read_file("/ph.bin");
    result = back.is_phantom() && back.size() == 1'000'000;
  }(t, ok));
  EXPECT_TRUE(ok);
}

// Property test: random file operations with periodic sync+remount always
// match an in-memory reference model.
class FsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

Task<> random_fs_ops(TestFs& tf, std::uint64_t seed, bool& ok) {
  common::Rng rng(seed);
  co_await SimpleFs::mkfs(tf.dev, tf.small_cfg());
  auto fs = co_await SimpleFs::mount(tf.dev);
  std::map<std::string, Buffer> model;          // synced truth
  std::map<std::string, Buffer> pending = model;  // includes unsynced

  ok = true;
  for (int step = 0; step < 120 && ok; ++step) {
    const double dice = rng.uniform01();
    const std::string path = "/file" + std::to_string(rng.uniform(6));
    if (dice < 0.45) {
      const Buffer data =
          Buffer::pattern(1 + rng.uniform(30'000), rng.next_u64());
      co_await fs->write_file(path, data);
      pending[path] = data;
    } else if (dice < 0.6) {
      if (pending.count(path) != 0) {
        fs->unlink(path);
        pending.erase(path);
      }
    } else if (dice < 0.75) {
      // verify against pending state
      if (pending.count(path) != 0) {
        const Buffer back = co_await fs->read_file(path);
        ok = (back == pending[path]);
      } else {
        ok = !fs->exists(path);
      }
    } else if (dice < 0.9) {
      co_await fs->sync();
      model = pending;
    } else {
      // crash-remount: unsynced changes vanish.
      co_await fs->sync();  // make checkpoint
      model = pending;
      fs = co_await SimpleFs::mount(tf.dev);
      pending = model;
      for (const auto& [p, data] : model) {
        const Buffer back = co_await fs->read_file(p);
        if (!(back == data)) {
          ok = false;
          break;
        }
      }
    }
  }
}

TEST_P(FsPropertyTest, MatchesReferenceModel) {
  TestFs t;
  bool ok = false;
  t.run(random_fs_ops(t, GetParam(), ok));
  EXPECT_TRUE(ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsPropertyTest,
                         ::testing::Values(3, 14, 159, 2653, 58979));

}  // namespace
}  // namespace blobcr::guestfs
