// Cross-backend scenario matrix: the paper's five approaches run through
// the same scenario drivers the benchmarks use, on a tiny real-data cloud,
// checking the *relationships* the evaluation is built on (who stores more,
// who grows where) rather than absolute timings.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "apps/scenarios.h"
#include "core/blobcr.h"

namespace blobcr::apps {
namespace {

using core::Backend;
using core::Cloud;
using core::CloudConfig;

CloudConfig tiny_cfg(Backend backend) {
  CloudConfig cfg;
  cfg.compute_nodes = 6;
  cfg.metadata_nodes = 2;
  cfg.backend = backend;
  cfg.os = vm::GuestOsConfig::test_tiny();
  cfg.vm.os_ram_bytes = 20 * common::kMB;
  return cfg;
}

struct Combo {
  Backend backend;
  CkptMode mode;
};

class ScenarioMatrixTest : public ::testing::TestWithParam<Combo> {};

TEST_P(ScenarioMatrixTest, MultiRoundRunWithRestartVerifies) {
  const Combo combo = GetParam();
  Cloud cloud(tiny_cfg(combo.backend));
  SyntheticRun run;
  run.instances = 2;
  run.buffer_bytes = 3 * common::kMB;
  run.real_data = true;
  run.rounds = 3;
  run.do_restart = true;
  run.restart_shift = 3;
  const RunResult result = run_synthetic(cloud, run, combo.mode);

  // Every round produced a checkpoint; repository growth is monotone.
  ASSERT_EQ(result.checkpoint_times.size(), 3u);
  ASSERT_EQ(result.repo_growth.size(), 3u);
  for (int r = 0; r < 3; ++r) {
    EXPECT_GT(result.checkpoint_times[static_cast<std::size_t>(r)], 0);
    EXPECT_GT(result.snapshot_bytes_per_vm[static_cast<std::size_t>(r)], 0u);
    if (r > 0) {
      EXPECT_GT(result.repo_growth[static_cast<std::size_t>(r)],
                result.repo_growth[static_cast<std::size_t>(r - 1)]);
    }
  }
  EXPECT_GT(result.restart_time, 0);
  // Full-VM restores are not digest-verified (no per-process files); all
  // other modes must round-trip bit for bit.
  if (combo.mode != CkptMode::FullVm) {
    EXPECT_TRUE(result.verified);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FiveApproaches, ScenarioMatrixTest,
    ::testing::Values(Combo{Backend::BlobCR, CkptMode::AppLevel},
                      Combo{Backend::BlobCR, CkptMode::ProcessBlcr},
                      Combo{Backend::Qcow2Disk, CkptMode::AppLevel},
                      Combo{Backend::Qcow2Disk, CkptMode::ProcessBlcr},
                      Combo{Backend::Qcow2Full, CkptMode::FullVm}),
    [](const auto& info) {
      return std::string(core::backend_name(info.param.backend)) == "BlobCR"
                 ? std::string("BlobCR_") + mode_name(info.param.mode)
             : std::string(core::backend_name(info.param.backend)) ==
                       "qcow2-disk"
                 ? std::string("Qcow2Disk_") + mode_name(info.param.mode)
                 : std::string("Qcow2Full_") + mode_name(info.param.mode);
    });

TEST(ScenarioRelationTest, SuccessiveCheckpointsGrowOnlyForBaselines) {
  // Figure 5's mechanism as a test: round-over-round checkpoint time stays
  // flat for BlobCR (incremental) and grows for qcow2-disk (container
  // recopy), on identical multi-round workloads.
  SyntheticRun run;
  run.instances = 1;
  run.buffer_bytes = 8 * common::kMB;
  run.real_data = true;
  run.rounds = 3;

  Cloud blob_cloud(tiny_cfg(Backend::BlobCR));
  const RunResult blob = run_synthetic(blob_cloud, run, CkptMode::AppLevel);
  Cloud qcow_cloud(tiny_cfg(Backend::Qcow2Disk));
  const RunResult qcow = run_synthetic(qcow_cloud, run, CkptMode::AppLevel);

  const double blob_ratio = sim::to_seconds(blob.checkpoint_times[2]) /
                            sim::to_seconds(blob.checkpoint_times[0]);
  const double qcow_ratio = sim::to_seconds(qcow.checkpoint_times[2]) /
                            sim::to_seconds(qcow.checkpoint_times[0]);
  EXPECT_LT(blob_ratio, 1.3);  // flat-ish
  EXPECT_GT(qcow_ratio, 1.5);  // clearly growing
  // And the baselines' repository accumulates whole-container copies.
  EXPECT_LT(blob.repo_growth[2], qcow.repo_growth[2]);
}

TEST(ScenarioRelationTest, FullVmSnapshotsCarryTheRamTax) {
  // Figure 4's +118 MB claim as a relation: the full-VM snapshot exceeds
  // the disk-only snapshot by at least the guest OS RAM size.
  SyntheticRun run;
  run.instances = 1;
  run.buffer_bytes = 4 * common::kMB;
  run.real_data = true;

  Cloud disk_cloud(tiny_cfg(Backend::Qcow2Disk));
  const RunResult disk = run_synthetic(disk_cloud, run, CkptMode::AppLevel);
  Cloud full_cloud(tiny_cfg(Backend::Qcow2Full));
  const RunResult full = run_synthetic(full_cloud, run, CkptMode::FullVm);

  EXPECT_GE(full.snapshot_bytes_per_vm[0],
            disk.snapshot_bytes_per_vm[0] + 20 * common::kMB);
}

}  // namespace
}  // namespace blobcr::apps
