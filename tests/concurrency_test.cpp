// Tests for the structured-concurrency helpers (when_all, run_window) and
// kill-propagation through them.
#include <gtest/gtest.h>

#include <vector>

#include "sim/sim.h"
#include "sim/when_all.h"

namespace blobcr::sim {
namespace {

Task<> tick(Simulation& s, Duration d, int id, std::vector<int>& done) {
  co_await s.delay(d);
  done.push_back(id);
}

TEST(WhenAllTest, WaitsForEveryTask) {
  Simulation s;
  std::vector<int> done;
  std::vector<Time> finished;
  auto p = s.spawn("main", [](Simulation& sm, std::vector<int>& out,
                              std::vector<Time>& fin) -> Task<> {
    std::vector<Task<>> tasks;
    tasks.push_back(tick(sm, 30, 1, out));
    tasks.push_back(tick(sm, 10, 2, out));
    tasks.push_back(tick(sm, 20, 3, out));
    co_await when_all(sm, std::move(tasks));
    fin.push_back(sm.now());
  }(s, done, finished));
  s.run();
  ASSERT_FALSE(p->error());
  EXPECT_EQ(done, (std::vector<int>{2, 3, 1}));  // completion order
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_EQ(finished[0], 30);  // barrier at the slowest task
}

TEST(WhenAllTest, EmptyVectorCompletesImmediately) {
  Simulation s;
  bool ran = false;
  s.spawn("main", [](Simulation& sm, bool& out) -> Task<> {
    co_await when_all(sm, {});
    out = true;
  }(s, ran));
  s.run();
  EXPECT_TRUE(ran);
}

Task<> thrower_after(Simulation& s, Duration d) {
  co_await s.delay(d);
  throw std::runtime_error("child failed");
}

TEST(WhenAllTest, PropagatesChildErrorAfterAllFinish) {
  Simulation s;
  bool caught = false;
  std::vector<int> done;
  auto p = s.spawn("main", [](Simulation& sm, bool& c,
                              std::vector<int>& out) -> Task<> {
    std::vector<Task<>> tasks;
    tasks.push_back(thrower_after(sm, 5));
    tasks.push_back(tick(sm, 50, 1, out));
    try {
      co_await when_all(sm, std::move(tasks));
    } catch (const std::runtime_error&) {
      c = true;
    }
  }(s, caught, done));
  s.run();
  ASSERT_FALSE(p->error());
  EXPECT_TRUE(caught);
  // The healthy sibling was not abandoned: it completed first.
  EXPECT_EQ(done, (std::vector<int>{1}));
}

TEST(WhenAllTest, KillingParentKillsChildren) {
  Simulation s;
  std::vector<int> done;
  auto p = s.spawn("main", [](Simulation& sm, std::vector<int>& out)
                               -> Task<> {
    std::vector<Task<>> tasks;
    tasks.push_back(tick(sm, 1000, 1, out));
    tasks.push_back(tick(sm, 2000, 2, out));
    co_await when_all(sm, std::move(tasks));
  }(s, done));
  s.call_at(100, [&] { p->kill(); });
  s.run();
  EXPECT_TRUE(done.empty());
  EXPECT_EQ(s.live_process_count(), 0u);
}

Task<> occupy(Simulation& s, std::size_t& active, std::size_t& peak,
              Duration d) {
  ++active;
  peak = std::max(peak, active);
  co_await s.delay(d);
  --active;
}

TEST(RunWindowTest, BoundsConcurrency) {
  Simulation s;
  std::size_t active = 0;
  std::size_t peak = 0;
  auto p = s.spawn("main", [](Simulation& sm, std::size_t& a,
                              std::size_t& pk) -> Task<> {
    std::vector<Task<>> tasks;
    for (int i = 0; i < 20; ++i) tasks.push_back(occupy(sm, a, pk, 10));
    co_await run_window(sm, 3, std::move(tasks));
  }(s, active, peak));
  s.run();
  ASSERT_FALSE(p->error());
  EXPECT_EQ(peak, 3u);
  EXPECT_EQ(active, 0u);
}

TEST(RunWindowTest, CompletesAllTasksInOrderOfIssue) {
  Simulation s;
  std::vector<int> done;
  s.spawn("main", [](Simulation& sm, std::vector<int>& out) -> Task<> {
    std::vector<Task<>> tasks;
    for (int i = 0; i < 6; ++i) tasks.push_back(tick(sm, 10, i, out));
    co_await run_window(sm, 2, std::move(tasks));
  }(s, done));
  s.run();
  EXPECT_EQ(done.size(), 6u);
}

TEST(RunWindowTest, WindowLargerThanTasksIsFullyParallel) {
  Simulation s;
  std::vector<Time> finished;
  std::vector<int> sink;
  s.spawn("main", [](Simulation& sm, std::vector<Time>& fin,
                     std::vector<int>& out) -> Task<> {
    std::vector<Task<>> tasks;
    for (int i = 0; i < 4; ++i) tasks.push_back(tick(sm, 50, i, out));
    co_await run_window(sm, 100, std::move(tasks));
    fin.push_back(sm.now());
  }(s, finished, sink));
  s.run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_EQ(finished[0], 50);  // all ran concurrently
}

TEST(RunWindowTest, EmptyTaskListCompletes) {
  Simulation s;
  bool ran = false;
  s.spawn("main", [](Simulation& sm, bool& out) -> Task<> {
    co_await run_window(sm, 4, {});
    out = true;
  }(s, ran));
  s.run();
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace blobcr::sim
