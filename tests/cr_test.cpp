// Checkpoint catalog + cr::Session control-plane tests: the catalog is
// repository state (a fresh Deployment/driver discovers and restarts from
// checkpoints it never took), selection refuses records that never
// completed (drain killed mid-publish), restart works from older and
// tagged lines bit-exactly, lineage is recorded, and the retention policy
// retires records and reclaims their snapshot storage without damaging any
// kept rollback target.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "blob/client.h"
#include "core/blobcr.h"
#include "flush/flush_agent.h"
#include "sim/sim.h"

namespace blobcr::cr {
namespace {

using common::Buffer;
using core::Backend;
using core::Cloud;
using core::CloudConfig;
using core::Deployment;
using sim::Task;

CloudConfig tiny_cfg(Backend backend, bool flush = false) {
  CloudConfig cfg;
  cfg.compute_nodes = 6;
  cfg.metadata_nodes = 2;
  cfg.backend = backend;
  cfg.flush.enabled = flush;
  cfg.os = vm::GuestOsConfig::test_tiny();
  cfg.vm.os_ram_bytes = 20 * common::kMB;
  return cfg;
}

Task<> write_state(vm::VmInstance* vm, std::uint64_t seed) {
  guestfs::SimpleFs* fs = vm->fs();
  co_await fs->write_file("/data/state.bin", Buffer::pattern(300'000, seed));
  co_await fs->sync();
}

Task<bool> state_matches(vm::VmInstance* vm, std::uint64_t seed) {
  const Buffer state = co_await vm->fs()->read_file("/data/state.bin");
  co_return state == Buffer::pattern(300'000, seed);
}

// ---------------------------------------------------------------------------
// The acceptance property: a catalog written by one Deployment is readable
// by a freshly constructed one. After destroy_all() plus teardown of every
// driver-held object (Deployment, Session — total driver loss), a fresh
// Session restores bit-exact guest state from repository-resident records
// alone.
// ---------------------------------------------------------------------------

TEST(CrCatalogTest, FreshDeploymentRestartsFromCatalogAfterDriverLoss) {
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  bool ok0 = false, ok1 = false;

  cloud.run([](Cloud* cl, bool* ok0, bool* ok1) -> Task<> {
    co_await cl->provision_base_image();
    {
      // Driver generation 1: deploy, checkpoint, then lose everything.
      auto dep = std::make_unique<Deployment>(*cl, 2);
      auto session = std::make_unique<Session>(*dep);
      co_await dep->deploy_and_boot();
      co_await write_state(&dep->vm(0), 10);
      co_await write_state(&dep->vm(1), 11);
      const CheckpointRecord rec = co_await session->checkpoint("gen1");
      EXPECT_EQ(rec.state, RecordState::Complete);
      EXPECT_GT(rec.total_bytes(), 0u);
      dep->destroy_all();
      // Total driver loss: no in-memory object survives this block.
    }

    // Driver generation 2: a fresh Deployment + Session discover the
    // catalog and restart a checkpoint they never took.
    Deployment dep2(*cl, 2);
    Session session2(dep2);
    const std::vector<CheckpointRecord> records = co_await session2.list();
    EXPECT_EQ(records.size(), 1u);
    if (records.empty()) co_return;
    EXPECT_EQ(records[0].tag, "gen1");
    const CheckpointRecord rec =
        co_await session2.restart(Selector::latest(), /*node_offset=*/2);
    EXPECT_EQ(rec.tag, "gen1");
    *ok0 = co_await state_matches(&dep2.vm(0), 10);
    *ok1 = co_await state_matches(&dep2.vm(1), 11);
  }(&cloud, &ok0, &ok1));

  EXPECT_TRUE(ok0);
  EXPECT_TRUE(ok1);
}

// The same property on a qcow baseline: the catalog lives in a PVFS file
// and the records round-trip the full qcow table state.
TEST(CrCatalogTest, QcowCatalogOnPvfsSurvivesDriverLoss) {
  Cloud cloud(tiny_cfg(Backend::Qcow2Disk));
  bool ok = false;

  cloud.run([](Cloud* cl, bool* ok) -> Task<> {
    co_await cl->provision_base_image();
    {
      auto dep = std::make_unique<Deployment>(*cl, 1);
      auto session = std::make_unique<Session>(*dep);
      co_await dep->deploy_and_boot();
      co_await write_state(&dep->vm(0), 77);
      const CheckpointRecord rec = co_await session->checkpoint();
      EXPECT_EQ(rec.state, RecordState::Complete);
      EXPECT_FALSE(rec.snapshots.at(0).pvfs_path.empty());
      dep->destroy_all();
    }
    Deployment dep2(*cl, 1);
    Session session2(dep2);
    (void)co_await session2.restart(Selector::latest(), /*node_offset=*/2);
    *ok = co_await state_matches(&dep2.vm(0), 77);
  }(&cloud, &ok));

  EXPECT_TRUE(ok);
}

// ---------------------------------------------------------------------------
// Selection semantics: older and tagged lines restart bit-exactly; lineage
// records which checkpoint the deployment descended from.
// ---------------------------------------------------------------------------

TEST(CrCatalogTest, RestartFromOlderCheckpointIsBitExact) {
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  bool old_ok = false, latest_ok = false;
  CheckpointId first_id = 0, second_id = 0, third_parent = 0;

  cloud.run([](Cloud* cl, bool* old_ok, bool* latest_ok, CheckpointId* id1,
               CheckpointId* id2, CheckpointId* parent3) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 2);
    Session session(dep);
    co_await dep.deploy_and_boot();

    co_await write_state(&dep.vm(0), 100);
    co_await write_state(&dep.vm(1), 101);
    const CheckpointRecord one = co_await session.checkpoint("one");
    *id1 = one.id;
    EXPECT_EQ(one.parent, 0u);

    co_await write_state(&dep.vm(0), 200);
    co_await write_state(&dep.vm(1), 201);
    const CheckpointRecord two = co_await session.checkpoint("two");
    *id2 = two.id;
    EXPECT_EQ(two.parent, one.id);

    // Roll back past the latest line to the OLDER checkpoint, by tag.
    dep.destroy_all();
    const CheckpointRecord back =
        co_await session.restart(Selector::by_tag("one"), 2);
    EXPECT_EQ(back.id, one.id);
    *old_ok = (co_await state_matches(&dep.vm(0), 100)) &&
              (co_await state_matches(&dep.vm(1), 101));

    // A checkpoint taken after that rollback descends from "one", not from
    // the abandoned "two" line.
    const CheckpointRecord three = co_await session.checkpoint();
    *parent3 = three.parent;

    // The newer line is still selectable — forward again, by id.
    dep.destroy_all();
    (void)co_await session.restart(Selector::by_id(two.id), 4);
    *latest_ok = (co_await state_matches(&dep.vm(0), 200)) &&
                 (co_await state_matches(&dep.vm(1), 201));
  }(&cloud, &old_ok, &latest_ok, &first_id, &second_id, &third_parent));

  EXPECT_TRUE(old_ok);
  EXPECT_TRUE(latest_ok);
  EXPECT_EQ(third_parent, first_id);
  EXPECT_NE(second_id, 0u);
}

// ---------------------------------------------------------------------------
// Completeness: a drain killed mid-publish (the flush crash harness's
// fail-stop-at-stage-boundary injection) leaves an Incomplete record that
// selection refuses; the previous Complete line stays the restart target.
// ---------------------------------------------------------------------------

TEST(CrCatalogTest, DrainKilledMidPublishLeavesUnselectableIncompleteRecord) {
  Cloud cloud(tiny_cfg(Backend::BlobCR, /*flush=*/true));
  bool restored_ok = false;
  bool ckpt_threw = false, select_threw = false;
  RecordState dead_state = RecordState::Staged;

  cloud.run([](Cloud* cl, bool* restored_ok, bool* ckpt_threw,
               bool* select_threw, RecordState* dead_state) -> Task<> {
    sim::Event never(cl->simulation());  // parking spot for the kill probe
    co_await cl->provision_base_image();
    auto dep = std::make_unique<Deployment>(*cl, 1);
    auto session = std::make_unique<Session>(*dep);
    co_await dep->deploy_and_boot();

    co_await write_state(&dep->vm(0), 500);
    const CheckpointRecord good = co_await session->checkpoint("good");

    // Arm the flush crash harness: fail-stop the node's drain agent at the
    // Putting stage boundary, exactly mid-publish.
    core::MirrorDevice* m = dep->instance(0).mirror.get();
    EXPECT_NE(m->flush_agent(), nullptr);
    if (m->flush_agent() == nullptr) co_return;
    bool armed = true;
    m->flush_agent()->set_stage_probe(
        [cl, m, &armed, &never](blob::CommitStage s) -> Task<> {
          if (armed && s == blob::CommitStage::Putting) {
            armed = false;
            cl->simulation().call_in(0, [m] { m->flush_agent()->fail_stop(); });
            co_await never.wait();  // killed while suspended here
          }
        });

    co_await write_state(&dep->vm(0), 600);
    CheckpointId dead_id = 0;
    try {
      (void)co_await session->checkpoint("doomed");
    } catch (const blob::BlobError&) {
      *ckpt_threw = true;
    }
    // The doomed record exists, is Incomplete, and selection refuses it.
    for (const CheckpointRecord& rec : co_await session->list()) {
      if (rec.tag == "doomed") {
        dead_id = rec.id;
        *dead_state = rec.state;
      }
    }
    EXPECT_NE(dead_id, 0u);
    if (dead_id == 0) co_return;
    try {
      (void)co_await session->catalog().select(Selector::by_id(dead_id));
    } catch (const CrError&) {
      *select_threw = true;
    }

    // Driver loss on top of the crash: a fresh session must still pick the
    // good line and restore it bit for bit.
    dep->destroy_all();
    session.reset();
    dep = std::make_unique<Deployment>(*cl, 1);
    Session fresh(*dep);
    const CheckpointRecord rec =
        co_await fresh.restart(Selector::latest(), /*node_offset=*/3);
    EXPECT_EQ(rec.id, good.id);
    *restored_ok = co_await state_matches(&dep->vm(0), 500);
  }(&cloud, &restored_ok, &ckpt_threw, &select_threw, &dead_state));

  EXPECT_TRUE(ckpt_threw) << "drain kill never surfaced";
  EXPECT_EQ(dead_state, RecordState::Incomplete);
  EXPECT_TRUE(select_threw) << "incomplete record was selectable";
  EXPECT_TRUE(restored_ok);
}

// A record left merely Staged by a dead driver (killed between stage and
// publish, so nobody marked it) is also refused, and a restart sweeps it to
// Incomplete.
TEST(CrCatalogTest, DanglingStagedRecordIsSweptOnRestart) {
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  RecordState swept = RecordState::Staged;
  bool ok = false;

  cloud.run([](Cloud* cl, RecordState* swept, bool* ok) -> Task<> {
    co_await cl->provision_base_image();
    auto dep = std::make_unique<Deployment>(*cl, 1);
    auto session = std::make_unique<Session>(*dep);
    co_await dep->deploy_and_boot();
    co_await write_state(&dep->vm(0), 41);
    (void)co_await session->checkpoint();
    // Stage a second line but "die" before publishing it.
    co_await write_state(&dep->vm(0), 42);
    (void)co_await dep->checkpoint_all();
    co_await session->stage_last("never-published");
    dep->destroy_all();
    session.reset();

    Deployment dep2(*cl, 1);
    Session fresh(dep2);
    (void)co_await fresh.restart(Selector::latest(), 2);
    *ok = co_await state_matches(&dep2.vm(0), 41);
    for (const CheckpointRecord& rec : co_await fresh.list()) {
      if (rec.tag == "never-published") *swept = rec.state;
    }
  }(&cloud, &swept, &ok));

  EXPECT_TRUE(ok);
  EXPECT_EQ(swept, RecordState::Incomplete);
}

// ---------------------------------------------------------------------------
// Retention: keep-last-N retires old untagged records and reclaims their
// snapshot versions through the GC; tagged records survive and stay
// restartable bit-exactly after the reclamation around them.
// ---------------------------------------------------------------------------

TEST(CrRetentionTest, KeepLastReclaimsUntaggedAndPreservesTagged) {
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  std::uint64_t reclaimed = 0;
  std::size_t complete_count = 0, retired_count = 0;
  bool golden_ok = false;

  cloud.run([](Cloud* cl, std::uint64_t* reclaimed, std::size_t* n_complete,
               std::size_t* n_retired, bool* golden_ok) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 1);
    Session::Config scfg;
    scfg.retention.keep_last = 1;
    scfg.retention.keep_tagged = true;
    Session session(dep, scfg);
    co_await dep.deploy_and_boot();

    co_await write_state(&dep.vm(0), 1);
    (void)co_await session.checkpoint("golden");
    for (std::uint64_t seed = 2; seed <= 4; ++seed) {
      co_await write_state(&dep.vm(0), seed);
      (void)co_await session.checkpoint();  // auto-retention after each
    }
    *reclaimed = session.gc_reclaimed_bytes();
    for (const CheckpointRecord& rec : co_await session.list()) {
      if (rec.state == RecordState::Complete) ++*n_complete;
      if (rec.state == RecordState::Retired) ++*n_retired;
    }

    // The tagged line survived retention AND the GC around it: restart it.
    dep.destroy_all();
    (void)co_await session.restart(Selector::by_tag("golden"), 2);
    *golden_ok = co_await state_matches(&dep.vm(0), 1);
  }(&cloud, &reclaimed, &complete_count, &retired_count, &golden_ok));

  EXPECT_GT(reclaimed, 0u);
  // golden (tagged) + the newest untagged record stay Complete; the middle
  // untagged records retired.
  EXPECT_EQ(complete_count, 2u);
  EXPECT_EQ(retired_count, 2u);
  EXPECT_TRUE(golden_ok);
}

// ---------------------------------------------------------------------------
// Elastic (N -> M) restart: the catalog's N snapshot tuples come back as M
// instances through the content-addressed plane. The acceptance property is
// bit-exactness of the UNION of device images across the remap — every
// source's state lands on exactly one new shard (boot device or attached
// volume) — plus the catalog invariants: no new record, lineage preserved,
// and the next checkpoint records M tuples.
// ---------------------------------------------------------------------------

Task<bool> attached_matches(Deployment* dep, std::size_t i, std::size_t k,
                            std::uint64_t seed) {
  const auto fs =
      co_await guestfs::SimpleFs::mount(dep->attached_volume(i, k).device());
  const Buffer state = co_await fs->read_file("/data/state.bin");
  co_return state == Buffer::pattern(300'000, seed);
}

TEST(CrElasticTest, ShrinkRestartUnionBitExactColdCaches) {
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  bool union_ok = false;
  std::size_t records_before = 0, records_after = 0;
  std::size_t post_tuples = 0;
  CheckpointId pre_id = 0, post_parent = 0;

  cloud.run([](Cloud* cl, bool* union_ok, std::size_t* rec_before,
               std::size_t* rec_after, std::size_t* post_tuples,
               CheckpointId* pre_id, CheckpointId* post_parent) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 4);
    Session session(dep);
    co_await dep.deploy_and_boot();
    for (std::size_t i = 0; i < 4; ++i)
      co_await write_state(&dep.vm(i), 10 + i);
    const CheckpointRecord pre = co_await session.checkpoint("pre-rescale");
    *pre_id = pre.id;
    *rec_before = (co_await session.list()).size();

    // Shrink 4 -> 2 on fresh nodes with cold caches: every byte comes back
    // through the repository, remapped as two contiguous shards.
    dep.destroy_all();
    Session::RestartOptions opts;
    opts.node_offset = 4;
    opts.cold_caches = true;
    opts.instances = 2;
    const CheckpointRecord rec =
        co_await session.restart(Selector::latest(), opts);
    EXPECT_EQ(rec.id, pre.id);
    EXPECT_EQ(dep.size(), 2u);
    EXPECT_EQ(dep.attached_count(0), 1u);
    EXPECT_EQ(dep.attached_count(1), 1u);
    // Shards: instance 0 boots source 0 and attaches source 1; instance 1
    // boots source 2 and attaches source 3.
    *union_ok = (co_await state_matches(&dep.vm(0), 10)) &&
                (co_await attached_matches(&dep, 0, 0, 11)) &&
                (co_await state_matches(&dep.vm(1), 12)) &&
                (co_await attached_matches(&dep, 1, 0, 13));
    // The rescale wrote no new catalog state and kept the lineage head.
    *rec_after = (co_await session.list()).size();
    EXPECT_EQ(session.lineage_head(), pre.id);

    // The next checkpoint from the 2-instance deployment records 2 tuples,
    // descending from the pre-rescale record.
    co_await write_state(&dep.vm(0), 20);
    co_await write_state(&dep.vm(1), 21);
    const CheckpointRecord post = co_await session.checkpoint("post-rescale");
    *post_tuples = post.snapshots.size();
    *post_parent = post.parent;
  }(&cloud, &union_ok, &records_before, &records_after, &post_tuples,
    &pre_id, &post_parent));

  EXPECT_TRUE(union_ok);
  EXPECT_EQ(records_after, records_before);
  EXPECT_EQ(post_tuples, 2u);
  EXPECT_EQ(post_parent, pre_id);
}

TEST(CrElasticTest, GrowRestartClonesDeriveFreshImagesWarmCaches) {
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  bool union_ok = false;
  std::size_t post_tuples = 0;
  bool images_distinct = false;
  CheckpointId pre_id = 0, post_parent = 0;

  cloud.run([](Cloud* cl, bool* union_ok, std::size_t* post_tuples,
               bool* images_distinct, CheckpointId* pre_id,
               CheckpointId* post_parent) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 2);
    Session session(dep);
    co_await dep.deploy_and_boot();
    co_await write_state(&dep.vm(0), 30);
    co_await write_state(&dep.vm(1), 31);
    const CheckpointRecord pre = co_await session.checkpoint("pre-rescale");
    *pre_id = pre.id;

    // Grow 2 -> 4, warm caches: sources 0 and 1 each feed two instances.
    dep.destroy_all();
    Session::RestartOptions opts;
    opts.node_offset = 2;
    opts.instances = 4;
    (void)co_await session.restart(Selector::latest(), opts);
    EXPECT_EQ(dep.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
      EXPECT_EQ(dep.attached_count(i), 0u);
    *union_ok = (co_await state_matches(&dep.vm(0), 30)) &&
                (co_await state_matches(&dep.vm(1), 30)) &&
                (co_await state_matches(&dep.vm(2), 31)) &&
                (co_await state_matches(&dep.vm(3), 31));

    // A checkpoint from the grown deployment records 4 tuples, and no two
    // instances committed into the same checkpoint image (the clones
    // derived fresh ones).
    for (std::size_t i = 0; i < 4; ++i)
      co_await write_state(&dep.vm(i), 40 + i);
    const CheckpointRecord post = co_await session.checkpoint("post-rescale");
    *post_tuples = post.snapshots.size();
    *post_parent = post.parent;
    std::vector<blob::BlobId> images;
    for (const core::InstanceSnapshot& s : post.snapshots) {
      if (s.image != 0) images.push_back(s.image);
    }
    std::sort(images.begin(), images.end());
    *images_distinct =
        images.size() == 4 &&
        std::adjacent_find(images.begin(), images.end()) == images.end();
  }(&cloud, &union_ok, &post_tuples, &images_distinct, &pre_id,
    &post_parent));

  EXPECT_TRUE(union_ok);
  EXPECT_EQ(post_tuples, 4u);
  EXPECT_TRUE(images_distinct);
  EXPECT_EQ(post_parent, pre_id);
}

TEST(CrElasticTest, EqualCountDegeneratesToClassicRestart) {
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  bool ok = false;

  cloud.run([](Cloud* cl, bool* ok) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 2);
    Session session(dep);
    co_await dep.deploy_and_boot();
    co_await write_state(&dep.vm(0), 50);
    co_await write_state(&dep.vm(1), 51);
    (void)co_await session.checkpoint();
    dep.destroy_all();
    Session::RestartOptions opts;
    opts.node_offset = 2;
    opts.cold_caches = true;
    opts.instances = 2;  // M == N: today's 1:1 path
    (void)co_await session.restart(Selector::latest(), opts);
    EXPECT_EQ(dep.size(), 2u);
    EXPECT_EQ(dep.attached_count(0), 0u);
    EXPECT_EQ(dep.attached_count(1), 0u);
    *ok = (co_await state_matches(&dep.vm(0), 50)) &&
          (co_await state_matches(&dep.vm(1), 51));
  }(&cloud, &ok));

  EXPECT_TRUE(ok);
}

// The same union property on the qcow2-disk baseline: attached volumes open
// the source's snapshot container straight off PVFS, and grow clones copy
// the container to a fresh file so no two instances commit into one.
TEST(CrElasticTest, QcowDiskShrinkAndGrowUnionBitExact) {
  Cloud cloud(tiny_cfg(Backend::Qcow2Disk));
  bool shrink_ok = false, grow_ok = false;
  bool paths_distinct = false;

  cloud.run([](Cloud* cl, bool* shrink_ok, bool* grow_ok,
               bool* paths_distinct) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 3);
    Session session(dep);
    co_await dep.deploy_and_boot();
    for (std::size_t i = 0; i < 3; ++i)
      co_await write_state(&dep.vm(i), 60 + i);
    (void)co_await session.checkpoint("pre");

    // Shrink 3 -> 2: instance 0 boots source 0; instance 1 boots source 1
    // and attaches source 2.
    dep.destroy_all();
    Session::RestartOptions shrink;
    shrink.node_offset = 3;
    shrink.instances = 2;
    (void)co_await session.restart(Selector::latest(), shrink);
    EXPECT_EQ(dep.size(), 2u);
    EXPECT_EQ(dep.attached_count(1), 1u);
    *shrink_ok = (co_await state_matches(&dep.vm(0), 60)) &&
                 (co_await state_matches(&dep.vm(1), 61)) &&
                 (co_await attached_matches(&dep, 1, 0, 62));

    // Grow back 3 -> 4 from the same record: source 0 feeds instances 0
    // and 1 (the clone gets a fresh container copy).
    dep.destroy_all();
    Session::RestartOptions grow;
    grow.node_offset = 0;
    grow.instances = 4;
    (void)co_await session.restart(Selector::latest(), grow);
    EXPECT_EQ(dep.size(), 4u);
    *grow_ok = (co_await state_matches(&dep.vm(0), 60)) &&
               (co_await state_matches(&dep.vm(1), 60)) &&
               (co_await state_matches(&dep.vm(2), 61)) &&
               (co_await state_matches(&dep.vm(3), 62));

    // Distinct containers: a new checkpoint from the grown deployment
    // writes 4 tuples with 4 distinct snapshot files.
    for (std::size_t i = 0; i < 4; ++i)
      co_await write_state(&dep.vm(i), 70 + i);
    const CheckpointRecord post = co_await session.checkpoint("post");
    std::vector<std::string> paths;
    for (const core::InstanceSnapshot& s : post.snapshots)
      paths.push_back(s.pvfs_path);
    std::sort(paths.begin(), paths.end());
    *paths_distinct =
        paths.size() == 4 && !paths[0].empty() &&
        std::adjacent_find(paths.begin(), paths.end()) == paths.end();
  }(&cloud, &shrink_ok, &grow_ok, &paths_distinct));

  EXPECT_TRUE(shrink_ok);
  EXPECT_TRUE(grow_ok);
  EXPECT_TRUE(paths_distinct);
}

// Growing past the compute pool trips the same placement validation the
// Deployment constructor enforces: M instances need M distinct nodes.
TEST(CrElasticTest, GrowBeyondComputePoolRefused) {
  Cloud cloud(tiny_cfg(Backend::BlobCR));  // 6 compute nodes
  bool threw = false;

  cloud.run([](Cloud* cl, bool* threw) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 2);
    Session session(dep);
    co_await dep.deploy_and_boot();
    co_await write_state(&dep.vm(0), 1);
    co_await write_state(&dep.vm(1), 2);
    (void)co_await session.checkpoint();
    Session::RestartOptions opts;
    opts.instances = 7;
    try {
      (void)co_await session.restart(Selector::latest(), opts);
    } catch (const std::invalid_argument&) {
      *threw = true;
    }
  }(&cloud, &threw));

  EXPECT_TRUE(threw);
}

// qcow2-full resumes full VM state (rank count baked in): rescaling is
// refused before the running deployment is torn down.
TEST(CrElasticTest, QcowFullRescaleRefusedWithoutTeardown) {
  Cloud cloud(tiny_cfg(Backend::Qcow2Full));
  bool threw = false, still_ok = false;

  cloud.run([](Cloud* cl, bool* threw, bool* still_ok) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 2);
    Session session(dep);
    co_await dep.deploy_and_boot();
    co_await write_state(&dep.vm(0), 80);
    co_await write_state(&dep.vm(1), 81);
    (void)co_await session.checkpoint();
    Session::RestartOptions opts;
    opts.instances = 1;
    try {
      (void)co_await session.restart(Selector::latest(), opts);
    } catch (const CrError&) {
      *threw = true;
    }
    // The refusal happened before teardown: the deployment still runs and
    // its state is intact.
    *still_ok = (co_await state_matches(&dep.vm(0), 80)) &&
                (co_await state_matches(&dep.vm(1), 81));
  }(&cloud, &threw, &still_ok));

  EXPECT_TRUE(threw);
  EXPECT_TRUE(still_ok);
}

// ---------------------------------------------------------------------------
// Session::restart exception safety: a boot failure mid-restart (injected
// through the deployment's restart probe, crash-harness style) must leave
// the record's tuples intact and the lineage head untouched, so a retry
// from the very same record succeeds bit-exactly.
// ---------------------------------------------------------------------------

TEST(CrElasticTest, RestartBootFailureLeavesRecordRetryable) {
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  bool threw = false, retried_ok = false;
  std::size_t tuples_after_failure = 0;

  cloud.run([](Cloud* cl, bool* threw, bool* retried_ok,
               std::size_t* tuples) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 2);
    Session session(dep);
    co_await dep.deploy_and_boot();
    co_await write_state(&dep.vm(0), 90);
    co_await write_state(&dep.vm(1), 91);
    const CheckpointRecord pre = co_await session.checkpoint("target");
    const CheckpointId head_before = session.lineage_head();

    dep.destroy_all();
    bool armed = true;
    dep.set_restart_probe([&armed](std::size_t) {
      if (armed) {
        armed = false;
        throw std::runtime_error("injected mid-restart boot failure");
      }
    });
    try {
      (void)co_await session.restart(Selector::latest(), 2);
    } catch (const std::runtime_error&) {
      *threw = true;
    }
    EXPECT_EQ(session.lineage_head(), head_before);
    // The catalog record kept its snapshot line through the failure.
    for (const CheckpointRecord& r : co_await session.list()) {
      if (r.id == pre.id) *tuples = r.snapshots.size();
    }

    // Retry from the same record (probe now disarmed): bit-exact restore.
    (void)co_await session.restart(Selector::latest(), 4);
    *retried_ok = (co_await state_matches(&dep.vm(0), 90)) &&
                  (co_await state_matches(&dep.vm(1), 91));
    EXPECT_EQ(session.lineage_head(), pre.id);
  }(&cloud, &threw, &retried_ok, &tuples_after_failure));

  EXPECT_TRUE(threw) << "injected boot failure never surfaced";
  EXPECT_EQ(tuples_after_failure, 2u);
  EXPECT_TRUE(retried_ok);
}

TEST(CrRetentionTest, QcowDiskRetentionRemovesRetiredSnapshotCopies) {
  Cloud cloud(tiny_cfg(Backend::Qcow2Disk));
  std::uint64_t reclaimed = 0;
  std::size_t files_before = 0, files_after = 0;
  bool ok = false;

  cloud.run([](Cloud* cl, std::uint64_t* reclaimed, std::size_t* before,
               std::size_t* after, bool* ok) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 1);
    Session::Config scfg;
    scfg.retention.keep_last = 1;
    scfg.auto_retention = false;  // apply explicitly below
    Session session(dep, scfg);
    co_await dep.deploy_and_boot();

    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      co_await write_state(&dep.vm(0), seed);
      (void)co_await session.checkpoint();
    }
    *before = cl->pvfs()->file_count();
    *reclaimed = co_await session.apply_retention();
    *after = cl->pvfs()->file_count();

    dep.destroy_all();
    (void)co_await session.restart(Selector::latest(), 2);
    *ok = co_await state_matches(&dep.vm(0), 3);
  }(&cloud, &reclaimed, &files_before, &files_after, &ok));

  EXPECT_GT(reclaimed, 0u);
  EXPECT_EQ(files_after + 2, files_before);  // two retired copies removed
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace blobcr::cr
