// Tests for the discrete-event engine: tasks, processes, kill semantics,
// synchronization primitives, fair-share resources.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/sim.h"

namespace blobcr::sim {
namespace {

// --- basic time / event machinery -----------------------------------------

TEST(SimulationTest, CallbacksRunInTimeOrder) {
  Simulation s;
  std::vector<int> order;
  s.call_at(30, [&] { order.push_back(3); });
  s.call_at(10, [&] { order.push_back(1); });
  s.call_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(SimulationTest, SimultaneousEventsFifo) {
  Simulation s;
  std::vector<int> order;
  s.call_at(10, [&] { order.push_back(1); });
  s.call_at(10, [&] { order.push_back(2); });
  s.call_at(10, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationTest, CancelledTimerDoesNotFire) {
  Simulation s;
  bool fired = false;
  TimerHandle h = s.call_at(5, [&] { fired = true; });
  h.cancel();
  s.run();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, RunUntilStopsAtTime) {
  Simulation s;
  int count = 0;
  s.call_at(10, [&] { ++count; });
  s.call_at(20, [&] { ++count; });
  s.run_until(15);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now(), 15);
  s.run();
  EXPECT_EQ(count, 2);
}

// --- coroutine processes ---------------------------------------------------

Task<> record_after_delay(Simulation& s, Duration d, std::vector<Time>& out) {
  co_await s.delay(d);
  out.push_back(s.now());
}

TEST(ProcessTest, DelayAdvancesTime) {
  Simulation s;
  std::vector<Time> times;
  s.spawn("a", record_after_delay(s, 100, times));
  s.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 100);
}

TEST(ProcessTest, ProcessesInterleave) {
  Simulation s;
  std::vector<Time> times;
  s.spawn("a", record_after_delay(s, 200, times));
  s.spawn("b", record_after_delay(s, 100, times));
  s.run();
  EXPECT_EQ(times, (std::vector<Time>{100, 200}));
}

Task<int> add_later(Simulation& s, int a, int b) {
  co_await s.delay(10);
  co_return a + b;
}

Task<> use_subtask(Simulation& s, int& out) {
  out = co_await add_later(s, 2, 3);
}

TEST(ProcessTest, SubtaskReturnsValue) {
  Simulation s;
  int result = 0;
  s.spawn("main", use_subtask(s, result));
  s.run();
  EXPECT_EQ(result, 5);
}

Task<> thrower(Simulation& s) {
  co_await s.delay(1);
  throw std::runtime_error("boom");
}

Task<> catcher(Simulation& s, bool& caught) {
  try {
    co_await thrower(s);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(ProcessTest, ExceptionPropagatesToAwaiter) {
  Simulation s;
  bool caught = false;
  s.spawn("main", catcher(s, caught));
  s.run();
  EXPECT_TRUE(caught);
}

TEST(ProcessTest, UncaughtExceptionMarksFailed) {
  Simulation s;
  auto p = s.spawn("main", thrower(s));
  s.run();
  EXPECT_EQ(p->state(), Process::State::Failed);
  EXPECT_TRUE(p->error() != nullptr);
}

TEST(ProcessTest, NormalCompletionMarksDone) {
  Simulation s;
  std::vector<Time> times;
  auto p = s.spawn("a", record_after_delay(s, 5, times));
  s.run();
  EXPECT_EQ(p->state(), Process::State::Done);
}

Task<> join_then_record(Simulation& s, ProcessPtr target, std::vector<Time>& out) {
  co_await target->join();
  out.push_back(s.now());
}

TEST(ProcessTest, JoinWaitsForCompletion) {
  Simulation s;
  std::vector<Time> times;
  auto worker = s.spawn("worker", record_after_delay(s, 50, times));
  s.spawn("joiner", join_then_record(s, worker, times));
  s.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[1], 50);
}

TEST(ProcessTest, JoinOnFinishedProcessReturnsImmediately) {
  Simulation s;
  std::vector<Time> times;
  auto worker = s.spawn("worker", record_after_delay(s, 10, times));
  s.run();
  s.spawn("joiner", join_then_record(s, worker, times));
  s.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[1], 10);
}

// --- kill semantics ----------------------------------------------------------

TEST(KillTest, KilledProcessDoesNotResume) {
  Simulation s;
  std::vector<Time> times;
  auto p = s.spawn("victim", record_after_delay(s, 100, times));
  s.call_at(50, [&] { p->kill(); });
  s.run();
  EXPECT_TRUE(times.empty());
  EXPECT_EQ(p->state(), Process::State::Killed);
}

TEST(KillTest, KillAfterCompletionIsNoop) {
  Simulation s;
  std::vector<Time> times;
  auto p = s.spawn("victim", record_after_delay(s, 10, times));
  s.run();
  p->kill();
  EXPECT_EQ(p->state(), Process::State::Done);
}

struct DtorFlag {
  bool* flag;
  explicit DtorFlag(bool* f) : flag(f) {}
  ~DtorFlag() {
    if (flag != nullptr) *flag = true;
  }
  DtorFlag(DtorFlag&& o) noexcept : flag(std::exchange(o.flag, nullptr)) {}
};

Task<> hold_raii(Simulation& s, bool* destroyed) {
  DtorFlag guard(destroyed);
  co_await s.delay(1000);
}

TEST(KillTest, KillRunsDestructorsOfInFlightFrames) {
  Simulation s;
  bool destroyed = false;
  auto p = s.spawn("victim", hold_raii(s, &destroyed));
  s.call_at(10, [&] { p->kill(); });
  s.run();
  EXPECT_TRUE(destroyed);
}

Task<> sleep_for(Simulation& s, Duration d) { co_await s.delay(d); }

Task<> parent_spawns_child(Simulation& s, bool* parent_done) {
  s.spawn("child", sleep_for(s, 1000));
  co_await s.delay(500);
  *parent_done = true;
}

TEST(KillTest, KillPropagatesToChildren) {
  Simulation s;
  bool parent_done = false;
  auto p = s.spawn("parent", parent_spawns_child(s, &parent_done));
  s.call_at(100, [&] { p->kill(); });
  s.run();
  EXPECT_FALSE(parent_done);
  EXPECT_EQ(s.live_process_count(), 0u);
}

Task<> lock_and_sleep(Simulation& s, Mutex& m, std::vector<Time>& acquired) {
  auto guard = co_await m.lock();
  acquired.push_back(s.now());
  co_await s.delay(100);
}

TEST(KillTest, KillReleasesHeldMutex) {
  Simulation s;
  Mutex m(s);
  std::vector<Time> acquired;
  auto a = s.spawn("a", lock_and_sleep(s, m, acquired));
  s.spawn("b", lock_and_sleep(s, m, acquired));
  s.call_at(30, [&] { a->kill(); });  // a holds the lock at t=30
  s.run();
  ASSERT_EQ(acquired.size(), 2u);
  EXPECT_EQ(acquired[0], 0);
  EXPECT_EQ(acquired[1], 30);  // b acquires the moment a dies
}

Task<> wait_on_event(Event& e, std::vector<int>& out, int id) {
  co_await e.wait();
  out.push_back(id);
}

TEST(KillTest, KillWhileWaitingOnEventDetaches) {
  Simulation s;
  Event e(s);
  std::vector<int> out;
  auto a = s.spawn("a", wait_on_event(e, out, 1));
  s.spawn("b", wait_on_event(e, out, 2));
  s.call_at(10, [&] { a->kill(); });
  s.call_at(20, [&] { e.set(); });
  s.run();
  EXPECT_EQ(out, (std::vector<int>{2}));
}

// --- synchronization primitives ---------------------------------------------

TEST(EventTest, AlreadySetEventDoesNotBlock) {
  Simulation s;
  Event e(s);
  e.set();
  std::vector<int> out;
  s.spawn("a", wait_on_event(e, out, 1));
  s.run();
  EXPECT_EQ(out, (std::vector<int>{1}));
}

TEST(EventTest, SetWakesAllWaiters) {
  Simulation s;
  Event e(s);
  std::vector<int> out;
  s.spawn("a", wait_on_event(e, out, 1));
  s.spawn("b", wait_on_event(e, out, 2));
  s.call_at(5, [&] { e.set(); });
  s.run();
  EXPECT_EQ(out.size(), 2u);
}

Task<> sem_user(Simulation& s, Semaphore& sem, Duration hold,
                std::vector<Time>& times) {
  co_await sem.acquire();
  times.push_back(s.now());
  co_await s.delay(hold);
  sem.release();
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Simulation s;
  Semaphore sem(s, 2);
  std::vector<Time> times;
  for (int i = 0; i < 4; ++i) s.spawn("u", sem_user(s, sem, 100, times));
  s.run();
  ASSERT_EQ(times.size(), 4u);
  EXPECT_EQ(times[0], 0);
  EXPECT_EQ(times[1], 0);
  EXPECT_EQ(times[2], 100);
  EXPECT_EQ(times[3], 100);
}

TEST(SemaphoreTest, FifoHandOff) {
  Simulation s;
  Semaphore sem(s, 1);
  std::vector<Time> times;
  for (int i = 0; i < 3; ++i) s.spawn("u", sem_user(s, sem, 10, times));
  s.run();
  EXPECT_EQ(times, (std::vector<Time>{0, 10, 20}));
}

Task<> barrier_party(Simulation& s, Barrier& b, Duration arrive_at,
                     std::vector<Time>& done) {
  co_await s.delay(arrive_at);
  co_await b.arrive_and_wait();
  done.push_back(s.now());
}

TEST(BarrierTest, AllPartiesLeaveAtLastArrival) {
  Simulation s;
  Barrier b(s, 3);
  std::vector<Time> done;
  s.spawn("p1", barrier_party(s, b, 10, done));
  s.spawn("p2", barrier_party(s, b, 50, done));
  s.spawn("p3", barrier_party(s, b, 30, done));
  s.run();
  ASSERT_EQ(done.size(), 3u);
  for (const Time t : done) EXPECT_EQ(t, 50);
}

TEST(BarrierTest, IsCyclic) {
  Simulation s;
  Barrier b(s, 2);
  std::vector<Time> done;
  // Two rounds of two parties.
  s.spawn("p1", barrier_party(s, b, 10, done));
  s.spawn("p2", barrier_party(s, b, 20, done));
  s.run();
  s.spawn("p3", barrier_party(s, b, 5, done));
  s.spawn("p4", barrier_party(s, b, 15, done));
  s.run();
  ASSERT_EQ(done.size(), 4u);
}

Task<> chan_producer(Simulation& s, Channel<int>& c, int n) {
  for (int i = 0; i < n; ++i) {
    co_await s.delay(10);
    c.push(i);
  }
}

Task<> chan_consumer(Channel<int>& c, int n, std::vector<int>& out) {
  for (int i = 0; i < n; ++i) {
    const int v = co_await c.recv();
    out.push_back(v);
  }
}

TEST(ChannelTest, FifoDelivery) {
  Simulation s;
  Channel<int> c(s);
  std::vector<int> out;
  s.spawn("prod", chan_producer(s, c, 5));
  s.spawn("cons", chan_consumer(c, 5, out));
  s.run();
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ChannelTest, BufferedBeforeReceiverArrives) {
  Simulation s;
  Channel<int> c(s);
  c.push(41);
  c.push(42);
  std::vector<int> out;
  s.spawn("cons", chan_consumer(c, 2, out));
  s.run();
  EXPECT_EQ(out, (std::vector<int>{41, 42}));
}

// --- shared resource ----------------------------------------------------------

Task<> use_resource(Simulation& s, SharedResource& r, std::uint64_t bytes,
                    std::vector<Time>& done) {
  co_await r.use(bytes);
  done.push_back(s.now());
  (void)s;
}

TEST(SharedResourceTest, SingleFlowFullRate) {
  Simulation s;
  SharedResource r(s, "disk", 100.0);  // 100 bytes/sec
  std::vector<Time> done;
  s.spawn("a", use_resource(s, r, 200, done));
  s.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(to_seconds(done[0]), 2.0, 1e-6);
}

TEST(SharedResourceTest, TwoFlowsShareFairly) {
  Simulation s;
  SharedResource r(s, "disk", 100.0);
  std::vector<Time> done;
  s.spawn("a", use_resource(s, r, 100, done));
  s.spawn("b", use_resource(s, r, 100, done));
  s.run();
  ASSERT_EQ(done.size(), 2u);
  // Both share 100 B/s: each runs at 50 B/s -> 2 s.
  EXPECT_NEAR(to_seconds(done[0]), 2.0, 1e-6);
  EXPECT_NEAR(to_seconds(done[1]), 2.0, 1e-6);
}

Task<> use_after(Simulation& s, SharedResource& r, Duration start,
                 std::uint64_t bytes, std::vector<Time>& done) {
  co_await s.delay(start);
  co_await r.use(bytes);
  done.push_back(s.now());
}

TEST(SharedResourceTest, LateArrivalSlowsExisting) {
  Simulation s;
  SharedResource r(s, "disk", 100.0);
  std::vector<Time> done;
  s.spawn("a", use_resource(s, r, 200, done));          // alone until t=1
  s.spawn("b", use_after(s, r, seconds(1), 100, done));  // joins at t=1
  s.run();
  ASSERT_EQ(done.size(), 2u);
  // a: 100 bytes in first second (alone), then 50 B/s -> finishes t=3.
  // b: 100 bytes at 50 B/s from t=1 -> t=3... both complete at 3s, then the
  //    leftover instant reschedule resolves ties deterministically.
  EXPECT_NEAR(to_seconds(done[0]), 3.0, 1e-3);
  EXPECT_NEAR(to_seconds(done[1]), 3.0, 1e-3);
}

TEST(SharedResourceTest, CancelledFlowFreesBandwidth) {
  Simulation s;
  SharedResource r(s, "disk", 100.0);
  std::vector<Time> done;
  auto a = s.spawn("a", use_resource(s, r, 1000, done));
  s.spawn("b", use_resource(s, r, 100, done));
  s.call_at(seconds(1), [&] { a->kill(); });
  s.run();
  ASSERT_EQ(done.size(), 1u);
  // b: 50 bytes in [0,1] at 50 B/s, then full rate: 50 more bytes at 100 B/s
  // -> t = 1.5 s.
  EXPECT_NEAR(to_seconds(done[0]), 1.5, 1e-3);
}

TEST(SharedResourceTest, ZeroByteUseCompletesImmediately) {
  Simulation s;
  SharedResource r(s, "disk", 100.0);
  std::vector<Time> done;
  s.spawn("a", use_resource(s, r, 0, done));
  s.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 0);
}

TEST(SharedResourceTest, TracksStats) {
  Simulation s;
  SharedResource r(s, "disk", 100.0);
  std::vector<Time> done;
  s.spawn("a", use_resource(s, r, 300, done));
  s.run();
  EXPECT_EQ(r.total_bytes(), 300u);
  EXPECT_NEAR(to_seconds(r.busy_time()), 3.0, 1e-6);
  EXPECT_EQ(r.active_flows(), 0u);
}

// --- determinism ---------------------------------------------------------------

Task<> noisy_worker(Simulation& s, SharedResource& r, int id,
                    std::vector<int>& order) {
  co_await s.delay(id % 3);
  co_await r.use(50 + static_cast<std::uint64_t>(id) * 7);
  order.push_back(id);
}

TEST(DeterminismTest, IdenticalRunsProduceIdenticalOrders) {
  auto run_once = [] {
    Simulation s;
    SharedResource r(s, "x", 1000.0);
    std::vector<int> order;
    for (int i = 0; i < 20; ++i) s.spawn("w", noisy_worker(s, r, i, order));
    s.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace blobcr::sim
