// Cross-module property tests: randomized operation histories checked
// against reference models, snapshot isolation across CLONE/COMMIT cycles,
// failure injection at arbitrary points of the checkpoint protocol, and
// whole-job invariants of the FT runner under random failure schedules.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "common/strutil.h"
#include "common/rng.h"
#include "core/blobcr.h"
#include "ft/failure.h"
#include "ft/runner.h"
#include "img/qcow.h"
#include "sim/sim.h"
#include "storage/byte_store.h"

namespace blobcr {
namespace {

using common::Buffer;
using common::Rng;
using sim::Simulation;
using sim::Task;

// ---------------------------------------------------------------------------
// MirrorDevice: random writes interleaved with CLONE/COMMIT snapshots.
// Every committed version must reconstruct, bit for bit, the device content
// as of its commit — no matter what was written afterwards.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kChunk = 4096;
constexpr std::uint64_t kImage = 48 * kChunk;

struct MirrorRig {
  Simulation sim;
  std::unique_ptr<net::Fabric> fabric;
  std::vector<std::unique_ptr<storage::Disk>> disks;
  std::unique_ptr<blob::BlobStore> store;
  blob::BlobId base = 0;
  net::NodeId host = 0;

  MirrorRig() {
    const std::size_t n_data = 4;
    const std::size_t total = 2 + 2 + n_data + 1;
    net::Fabric::Config fcfg;
    fcfg.node_count = total;
    fcfg.nic_bandwidth_bps = 1e9;
    fcfg.latency = 50 * sim::kMicrosecond;
    fabric = std::make_unique<net::Fabric>(sim, fcfg);
    blob::BlobStore::Config cfg;
    cfg.version_manager_node = 0;
    cfg.provider_manager_node = 1;
    cfg.metadata_nodes = {2, 3};
    storage::Disk::Config dcfg;
    dcfg.bandwidth_bps = 1e9;
    dcfg.position_cost = 100 * sim::kMicrosecond;
    for (std::size_t i = 0; i < n_data + 1; ++i) {
      disks.push_back(std::make_unique<storage::Disk>(
          sim, common::strf("d%zu", i), dcfg));
    }
    for (std::size_t i = 0; i < n_data; ++i) {
      cfg.data_providers.push_back(
          {static_cast<net::NodeId>(4 + i), disks[i].get(), 1});
    }
    cfg.default_chunk_size = kChunk;
    cfg.tree_depth = 10;
    store = std::make_unique<blob::BlobStore>(sim, *fabric, cfg);
    host = static_cast<net::NodeId>(total - 1);
  }

  void run(Task<> t) {
    auto p = sim.spawn("test", std::move(t));
    sim.run();
    if (p->error()) std::rethrow_exception(p->error());
  }
};

class MirrorSnapshotPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MirrorSnapshotPropertyTest, EveryCommittedVersionStaysIntact) {
  MirrorRig rig;
  rig.run([](MirrorRig* rig) -> Task<> {
    blob::BlobClient client(*rig->store, rig->host);
    rig->base = co_await client.create(kChunk);
    co_await client.write(rig->base, 0, Buffer::pattern(kImage, 42));
  }(&rig));

  core::MirrorDevice::Config mcfg;
  mcfg.capacity = kImage;
  core::MirrorDevice mirror(*rig.store, rig.host, *rig.disks[4], 99,
                            rig.base, 1, mcfg, nullptr);

  struct Snapshot {
    blob::VersionId version = 0;
    std::vector<std::byte> content;
  };
  struct State {
    std::vector<std::byte> ref;
    std::vector<Snapshot> snapshots;
    blob::BlobId ckpt_blob = 0;
  } st;

  rig.run([](MirrorRig*, core::MirrorDevice* m, State* st,
             int seed) -> Task<> {
    // Reference starts as the base pattern.
    const Buffer base = Buffer::pattern(kImage, 42);
    st->ref.assign(base.bytes().begin(), base.bytes().end());

    Rng rng(0x9'0b1e55 + static_cast<std::uint64_t>(seed));
    for (int op = 0; op < 80; ++op) {
      const std::uint64_t dice = rng.uniform(10);
      if (dice < 6) {
        // Random write, mirrored into the reference.
        const std::uint64_t off = rng.uniform(kImage - 1);
        const std::uint64_t len = 1 + rng.uniform(
            std::min<std::uint64_t>(kImage - off, 3 * kChunk) - 1 + 1);
        Buffer data = Buffer::pattern(len, rng.next_u64());
        std::memcpy(st->ref.data() + off, data.bytes().data(), len);
        co_await m->write(off, std::move(data));
      } else if (dice < 9) {
        // Random read must match the reference.
        const std::uint64_t off = rng.uniform(kImage - 1);
        const std::uint64_t len = 1 + rng.uniform(
            std::min<std::uint64_t>(kImage - off, 2 * kChunk) - 1 + 1);
        const Buffer got = co_await m->read(off, len);
        Buffer expect = Buffer::real(std::vector<std::byte>(
            st->ref.begin() + static_cast<std::ptrdiff_t>(off),
            st->ref.begin() + static_cast<std::ptrdiff_t>(off + len)));
        EXPECT_TRUE(got == expect) << "read mismatch at op " << op;
      } else {
        // CLONE/COMMIT: snapshot the reference alongside the device.
        st->ckpt_blob = co_await m->ioctl_clone();
        const blob::VersionId v = co_await m->ioctl_commit();
        st->snapshots.push_back({v, st->ref});
      }
    }
    // Force at least one final snapshot so the test always verifies some.
    st->ckpt_blob = co_await m->ioctl_clone();
    const blob::VersionId v = co_await m->ioctl_commit();
    st->snapshots.push_back({v, st->ref});
  }(&rig, &mirror, &st, GetParam()));

  // Read every committed version back through a fresh client: each must be
  // exactly the reference as of its commit (snapshot isolation).
  rig.run([](MirrorRig* rig, State* st) -> Task<> {
    blob::BlobClient client(*rig->store, rig->host);
    for (const auto& snap : st->snapshots) {
      const Buffer got =
          co_await client.read(st->ckpt_blob, snap.version, 0, kImage);
      const Buffer expect = Buffer::real(snap.content);
      EXPECT_TRUE(got == expect)
          << "version " << snap.version << " diverged";
    }
  }(&rig, &st));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MirrorSnapshotPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Asynchronous commit pipeline: overlapping writes interleaved with async
// commits. Read-your-own-snapshot: once ioctl_commit returns a provisional
// version, that version — whenever it publishes — must contain exactly the
// device content as of the return, never chunks written afterwards (the
// drain ships the frozen staging generation, not the live cache).
// ---------------------------------------------------------------------------

class AsyncCommitPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AsyncCommitPropertyTest, PublishedVersionNeverContainsLaterWrites) {
  MirrorRig rig;
  rig.run([](MirrorRig* rig) -> Task<> {
    blob::BlobClient client(*rig->store, rig->host);
    rig->base = co_await client.create(kChunk);
    co_await client.write(rig->base, 0, Buffer::pattern(kImage, 42));
  }(&rig));

  core::MirrorDevice::Config mcfg;
  mcfg.capacity = kImage;
  mcfg.flush.enabled = true;
  mcfg.flush.policy = flush::QueuePolicy::Queue;
  mcfg.flush.max_pending = 3;
  core::MirrorDevice mirror(*rig.store, rig.host, *rig.disks[4], 99,
                            rig.base, 1, mcfg, nullptr);

  struct Snapshot {
    blob::VersionId version = 0;
    std::vector<std::byte> content;
  };
  struct State {
    std::vector<std::byte> ref;
    std::vector<Snapshot> snapshots;
    blob::BlobId ckpt_blob = 0;
  } st;

  rig.run([](MirrorRig*, core::MirrorDevice* m, State* st,
             int seed) -> Task<> {
    const Buffer base = Buffer::pattern(kImage, 42);
    st->ref.assign(base.bytes().begin(), base.bytes().end());
    st->ckpt_blob = co_await m->ioctl_clone();

    Rng rng(0xa5'c0de + static_cast<std::uint64_t>(seed));
    std::uint64_t hot = 0;  // encourage overlapping writes around one spot
    for (int op = 0; op < 70; ++op) {
      const std::uint64_t dice = rng.uniform(10);
      if (dice < 7) {
        // Overlap-heavy random write: half the time near the hot offset.
        const std::uint64_t off = (dice < 3)
                                      ? rng.uniform(kImage - 1)
                                      : std::min(hot + rng.uniform(2 * kChunk),
                                                 kImage - 2);
        hot = off;
        const std::uint64_t len = 1 + rng.uniform(
            std::min<std::uint64_t>(kImage - off, 3 * kChunk) - 1 + 1);
        Buffer data = Buffer::pattern(len, rng.next_u64());
        std::memcpy(st->ref.data() + off, data.bytes().data(), len);
        co_await m->write(off, std::move(data));
      } else {
        // Async commit: the provisional version pins the content *now*;
        // the loop keeps writing immediately while the drain runs.
        const blob::VersionId v = co_await m->ioctl_commit();
        st->snapshots.push_back({v, st->ref});
      }
    }
    const blob::VersionId v = co_await m->ioctl_commit();
    st->snapshots.push_back({v, st->ref});
    co_await m->wait_drained();
  }(&rig, &mirror, &st, GetParam()));

  // Every provisional version, now published, must be exactly the content
  // at its ioctl_commit return — bit for bit, through a fresh client.
  rig.run([](MirrorRig* rig, State* st) -> Task<> {
    blob::BlobClient client(*rig->store, rig->host);
    for (const auto& snap : st->snapshots) {
      const Buffer got =
          co_await client.read(st->ckpt_blob, snap.version, 0, kImage);
      const Buffer expect = Buffer::real(snap.content);
      EXPECT_TRUE(got == expect)
          << "async version " << snap.version
          << " contains writes made after its commit returned";
    }
  }(&rig, &st));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsyncCommitPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// QcowImage: random write/read history over a backing file vs a flat
// reference, plus state export/reopen mid-history.
// ---------------------------------------------------------------------------

class QcowPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(QcowPropertyTest, RandomHistoryMatchesReference) {
  constexpr std::uint64_t kCluster = 1024;
  constexpr std::uint64_t kSize = 64 * kCluster;

  Simulation sim;
  storage::Disk::Config dcfg;
  dcfg.bandwidth_bps = 1e9;
  dcfg.position_cost = 0;
  storage::Disk disk(sim, "d", dcfg);
  storage::LocalFile backing(disk, 1);
  storage::LocalFile container(disk, 2);
  img::QcowImage::Config cfg;
  cfg.cluster_size = kCluster;
  cfg.virtual_size = kSize;
  auto image = std::make_unique<img::QcowImage>(container, &backing, cfg);

  auto run = [&sim](Task<> t) {
    auto p = sim.spawn("test", std::move(t));
    sim.run();
    if (p->error()) std::rethrow_exception(p->error());
  };

  std::vector<std::byte> ref;
  run([](storage::LocalFile* b, std::vector<std::byte>* ref) -> Task<> {
    const Buffer base = Buffer::pattern(kSize, 7);
    ref->assign(base.bytes().begin(), base.bytes().end());
    co_await b->write(0, base);
  }(&backing, &ref));

  Rng rng(0xc0c0 + static_cast<std::uint64_t>(GetParam()));
  for (int op = 0; op < 60; ++op) {
    const std::uint64_t dice = rng.uniform(10);
    if (dice < 5) {
      const std::uint64_t off = rng.uniform(kSize - 1);
      const std::uint64_t len =
          1 + rng.uniform(std::min<std::uint64_t>(kSize - off, 5 * kCluster));
      Buffer data = Buffer::pattern(len, rng.next_u64());
      std::memcpy(ref.data() + off, data.bytes().data(), len);
      run([](img::QcowImage* img, std::uint64_t off, Buffer data) -> Task<> {
        co_await img->write(off, std::move(data));
      }(image.get(), off, std::move(data)));
    } else if (dice < 9) {
      const std::uint64_t off = rng.uniform(kSize - 1);
      const std::uint64_t len =
          1 + rng.uniform(std::min<std::uint64_t>(kSize - off, 3 * kCluster));
      Buffer got;
      run([](img::QcowImage* img, std::uint64_t off, std::uint64_t len,
             Buffer* out) -> Task<> {
        *out = co_await img->read(off, len);
      }(image.get(), off, len, &got));
      const Buffer expect = Buffer::real(std::vector<std::byte>(
          ref.begin() + static_cast<std::ptrdiff_t>(off),
          ref.begin() + static_cast<std::ptrdiff_t>(off + len)));
      EXPECT_TRUE(got == expect) << "qcow read mismatch at op " << op;
    } else {
      // Export the table state and reopen the image from it — the qcow2
      // snapshot-file lifecycle (copy container, reopen elsewhere).
      const img::QcowImage::State state = image->export_state();
      image = std::make_unique<img::QcowImage>(container, &backing, cfg);
      run([](img::QcowImage* img, img::QcowImage::State st) -> Task<> {
        co_await img->open_existing(st);
      }(image.get(), state));
    }
  }

  // Full-image readback.
  Buffer all;
  run([](img::QcowImage* img, Buffer* out) -> Task<> {
    *out = co_await img->read(0, kSize);
  }(image.get(), &all));
  EXPECT_TRUE(all == Buffer::real(ref));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QcowPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Checkpoint protocol failure injection: kill the snapshot mid-flight at an
// arbitrary offset; the previous checkpoint must restore bit for bit.
// ---------------------------------------------------------------------------

class KillPointTest : public ::testing::TestWithParam<int> {};

TEST_P(KillPointTest, AbortedSnapshotNeverCorruptsPreviousCheckpoint) {
  const sim::Duration kill_after = GetParam() * sim::kMillisecond;

  core::CloudConfig cfg;
  cfg.compute_nodes = 4;
  cfg.metadata_nodes = 2;
  cfg.backend = core::Backend::BlobCR;
  cfg.os = vm::GuestOsConfig::test_tiny();
  cfg.vm.os_ram_bytes = 20 * common::kMB;
  core::Cloud cloud(cfg);

  struct Out {
    bool state_a_intact = false;
    bool rolled_back_b = false;
    bool next_checkpoint_works = false;
  } out;

  cloud.run([](core::Cloud* cl, sim::Duration kill_after, Out* out)
                -> Task<> {
    co_await cl->provision_base_image();
    core::Deployment dep(*cl, 1);
    co_await dep.deploy_and_boot();

    guestfs::SimpleFs* fs = dep.vm(0).fs();
    co_await fs->write_file("/data/state.bin", Buffer::pattern(400'000, 1));
    co_await fs->sync();
    (void)co_await dep.snapshot_instance(0);
    const core::GlobalCheckpoint good = dep.collect_last_snapshots();

    // New dirty state, then a snapshot attempt that dies mid-protocol.
    co_await fs->write_file("/data/state.bin", Buffer::pattern(400'000, 2));
    co_await fs->sync();
    sim::ProcessPtr snap = cl->simulation().spawn(
        "doomed-snapshot", [](core::Deployment* d) -> Task<> {
          (void)co_await d->snapshot_instance(0);
        }(&dep));
    co_await cl->simulation().delay(kill_after);
    snap->kill();  // fail-stop at an arbitrary protocol point

    dep.destroy_all();
    co_await dep.restart_from(good, 1);
    guestfs::SimpleFs* fs2 = dep.vm(0).fs();
    const Buffer a = co_await fs2->read_file("/data/state.bin");
    out->state_a_intact = (a == Buffer::pattern(400'000, 1));
    out->rolled_back_b = !(a == Buffer::pattern(400'000, 2));

    // The repository must not be wedged: the next checkpoint still works.
    co_await fs2->write_file("/data/state.bin", Buffer::pattern(400'000, 3));
    co_await fs2->sync();
    (void)co_await dep.snapshot_instance(0);
    const core::GlobalCheckpoint next = dep.collect_last_snapshots();
    dep.destroy_all();
    co_await dep.restart_from(next, 2);
    const Buffer c = co_await dep.vm(0).fs()->read_file("/data/state.bin");
    out->next_checkpoint_works = (c == Buffer::pattern(400'000, 3));
  }(&cloud, kill_after, &out));

  EXPECT_TRUE(out.state_a_intact);
  EXPECT_TRUE(out.rolled_back_b);
  EXPECT_TRUE(out.next_checkpoint_works);
}

INSTANTIATE_TEST_SUITE_P(KillOffsetsMs, KillPointTest,
                         ::testing::Values(0, 1, 2, 4, 8, 16, 40));

// ---------------------------------------------------------------------------
// FT runner under random failure schedules: whatever the schedule, the job
// either completes with verified state or gives up explicitly — and the
// bookkeeping stays consistent.
// ---------------------------------------------------------------------------

class FtSchedulePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FtSchedulePropertyTest, CompletesWithConsistentAccounting) {
  core::CloudConfig ccfg;
  ccfg.compute_nodes = 24;
  ccfg.metadata_nodes = 2;
  ccfg.backend = core::Backend::BlobCR;
  ccfg.replication = 2;
  ccfg.os = vm::GuestOsConfig::test_tiny();
  ccfg.vm.os_ram_bytes = 20 * common::kMB;
  core::Cloud cloud(ccfg);

  ft::FtJobConfig job;
  job.instances = 2;
  job.total_work = 90 * sim::kSecond;
  job.checkpoint_interval = 30 * sim::kSecond;
  job.step = 10 * sim::kSecond;
  job.state_bytes = 2 * common::kMB;
  job.real_data = true;
  job.repair_after_restart = true;
  job.failures = ft::FailureSchedule::sample(
      ft::FailureLaw::exponential(250.0), 2, 3600 * sim::kSecond,
      static_cast<std::uint64_t>(GetParam()));

  const ft::FtReport rep = ft::run_ft_job(cloud, job);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.verified);
  EXPECT_EQ(rep.useful_work, job.total_work);

  // Accounting invariants.
  std::size_t failed_epochs = 0;
  std::size_t failures_in_epochs = 0;
  sim::Duration wasted = 0;
  for (const ft::EpochRecord& e : rep.epochs) {
    EXPECT_GE(e.end, e.start);
    failed_epochs += e.success ? 0 : 1;
    failures_in_epochs += e.failures;
    if (!e.success) wasted += e.end - e.start;
  }
  EXPECT_EQ(failures_in_epochs, rep.failures);
  EXPECT_EQ(wasted, rep.wasted_compute);
  EXPECT_LE(failed_epochs, rep.restarts);
  EXPECT_GE(rep.makespan,
            rep.useful_work + rep.checkpoint_overhead + rep.wasted_compute);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtSchedulePropertyTest,
                         ::testing::Values(7, 17, 27, 37, 47));

}  // namespace
}  // namespace blobcr
