// Wire-protocol tests: the REST-ful proxy interface of §3.3 — codec
// round-trips, malformed-input rejection, and the frontend's dispatch
// (auth, status codes, a real checkpoint through the text protocol).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/blobcr.h"
#include "core/rest_proxy.h"
#include "core/wire.h"
#include "sim/sim.h"

namespace blobcr::core {
namespace {

using common::Buffer;
using sim::Task;

// ---------------------------------------------------------------------------
// percent encoding
// ---------------------------------------------------------------------------

TEST(WireCodecTest, PercentEncodeLeavesUnreservedAlone) {
  EXPECT_EQ(percent_encode("vm07.example_x~y-z"), "vm07.example_x~y-z");
}

TEST(WireCodecTest, PercentEncodeEscapesReserved) {
  EXPECT_EQ(percent_encode("a b&c=d%e/f"), "a%20b%26c%3Dd%25e%2Ff");
}

TEST(WireCodecTest, PercentRoundTripsArbitraryBytes) {
  std::string raw;
  for (int c = 0; c < 256; ++c) raw.push_back(static_cast<char>(c));
  EXPECT_EQ(percent_decode(percent_encode(raw)), raw);
}

TEST(WireCodecTest, PercentDecodeRejectsBadEscapes) {
  EXPECT_THROW((void)percent_decode("abc%2"), WireError);
  EXPECT_THROW((void)percent_decode("abc%"), WireError);
  EXPECT_THROW((void)percent_decode("abc%zz"), WireError);
}

// ---------------------------------------------------------------------------
// request codec
// ---------------------------------------------------------------------------

TEST(WireCodecTest, RequestRoundTrip) {
  WireRequest req;
  req.method = "POST";
  req.path = "/checkpoint";
  req.params["vm"] = "vm 07";  // needs escaping
  req.params["token"] = "s3cret&more";
  const WireRequest back = parse_request(encode_request(req));
  EXPECT_EQ(back.method, "POST");
  EXPECT_EQ(back.path, "/checkpoint");
  EXPECT_EQ(back.params.at("vm"), "vm 07");
  EXPECT_EQ(back.params.at("token"), "s3cret&more");
}

TEST(WireCodecTest, RequestWithoutParams) {
  const WireRequest req = parse_request("GET /status HTTP/1.0\r\n\r\n");
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/status");
  EXPECT_TRUE(req.params.empty());
}

TEST(WireCodecTest, RequestRejectsMalformedLines) {
  EXPECT_THROW((void)parse_request("POST /x HTTP/1.0"), WireError);  // no CRLF
  EXPECT_THROW((void)parse_request("POST\r\n\r\n"), WireError);
  EXPECT_THROW((void)parse_request("POST /x HTTP/9.9\r\n\r\n"), WireError);
  EXPECT_THROW((void)parse_request("POST x HTTP/1.0\r\n\r\n"), WireError);
  EXPECT_THROW((void)parse_request("POST /x?broken HTTP/1.0\r\n\r\n"),
               WireError);
}

// ---------------------------------------------------------------------------
// response codec
// ---------------------------------------------------------------------------

TEST(WireCodecTest, ResponseRoundTrip) {
  WireResponse resp;
  resp.status = 200;
  resp.reason = "OK";
  resp.fields["image"] = "12";
  resp.fields["version"] = "3";
  const WireResponse back = parse_response(encode_response(resp));
  EXPECT_EQ(back.status, 200);
  EXPECT_EQ(back.reason, "OK");
  EXPECT_EQ(back.fields.at("image"), "12");
  EXPECT_EQ(back.fields.at("version"), "3");
}

TEST(WireCodecTest, ResponseRejectsMalformedInput) {
  EXPECT_THROW((void)parse_response("FTP/1.0 200 OK\r\n\r\n"), WireError);
  EXPECT_THROW((void)parse_response("HTTP/1.0 2x0 OK\r\n\r\n"), WireError);
  EXPECT_THROW((void)parse_response("HTTP/1.0 200\r\n\r\n"), WireError);
  EXPECT_THROW((void)parse_response("HTTP/1.0 200 OK\r\nbad-header\r\n\r\n"),
               WireError);
}

TEST(WireCodecTest, MultiLineReasonStaysOnStatusLine) {
  const WireResponse r =
      parse_response("HTTP/1.0 503 Service Unavailable\r\n\r\n");
  EXPECT_EQ(r.status, 503);
  EXPECT_EQ(r.reason, "Service Unavailable");
}

// ---------------------------------------------------------------------------
// frontend over a live proxy
// ---------------------------------------------------------------------------

CloudConfig tiny_cfg() {
  CloudConfig cfg;
  cfg.compute_nodes = 4;
  cfg.metadata_nodes = 2;
  cfg.backend = Backend::BlobCR;
  cfg.os = vm::GuestOsConfig::test_tiny();
  cfg.vm.os_ram_bytes = 20 * common::kMB;
  return cfg;
}

struct RestOut {
  WireResponse ok;
  WireResponse bad_token;
  WireResponse bad_path;
  WireResponse bad_method;
  WireResponse bad_parse;
  bool restored = false;
};

TEST(RestProxyTest, ChecksAuthPathMethodAndServesCheckpoints) {
  Cloud cloud(tiny_cfg());
  RestOut out;

  cloud.run([](Cloud* cl, RestOut* out) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 1);
    co_await dep.deploy_and_boot();
    Deployment::Instance& inst = dep.instance(0);
    RestProxyFrontend rest(*inst.proxy, "s3cret");

    guestfs::SimpleFs* fs = dep.vm(0).fs();
    co_await fs->write_file("/data/state.bin", Buffer::pattern(200'000, 4));
    co_await fs->sync();

    WireRequest req;
    req.method = "POST";
    req.path = "/checkpoint";
    req.params["token"] = "s3cret";
    out->ok = parse_response(co_await rest.handle(
        encode_request(req), *inst.vm, *inst.mirror));

    req.params["token"] = "wrong";
    out->bad_token = parse_response(co_await rest.handle(
        encode_request(req), *inst.vm, *inst.mirror));

    req.params["token"] = "s3cret";
    req.path = "/nope";
    out->bad_path = parse_response(co_await rest.handle(
        encode_request(req), *inst.vm, *inst.mirror));

    req.path = "/checkpoint";
    req.method = "GET";
    out->bad_method = parse_response(co_await rest.handle(
        encode_request(req), *inst.vm, *inst.mirror));

    out->bad_parse = parse_response(co_await rest.handle(
        "garbage\r\n\r\n", *inst.vm, *inst.mirror));

    // The REST-taken snapshot is a real checkpoint: restart from it.
    inst.last_snapshot.backend = Backend::BlobCR;
    inst.last_snapshot.instance = 0;
    inst.last_snapshot.image =
        static_cast<blob::BlobId>(std::stoull(out->ok.fields.at("image")));
    inst.last_snapshot.version = static_cast<blob::VersionId>(
        std::stoull(out->ok.fields.at("version")));
    GlobalCheckpoint ckpt = dep.collect_last_snapshots();
    dep.destroy_all();
    co_await dep.restart_from(ckpt, 2);
    const Buffer back = co_await dep.vm(0).fs()->read_file("/data/state.bin");
    out->restored = (back == Buffer::pattern(200'000, 4));
  }(&cloud, &out));

  EXPECT_EQ(out.ok.status, 200);
  EXPECT_GT(std::stoull(out.ok.fields.at("payload-bytes")), 0u);
  EXPECT_GT(std::stoull(out.ok.fields.at("downtime-us")), 0u);
  EXPECT_EQ(out.bad_token.status, 403);
  EXPECT_EQ(out.bad_path.status, 404);
  EXPECT_EQ(out.bad_method.status, 405);
  EXPECT_EQ(out.bad_parse.status, 400);
  EXPECT_TRUE(out.restored);
}

TEST(RestProxyTest, FailedCheckpointComesBackAsServerError) {
  // Kill the only data provider's node first: the COMMIT cannot reach the
  // repository, and the frontend must turn that into a 500, with the VM
  // resumed (§3.3).
  CloudConfig cfg = tiny_cfg();
  cfg.compute_nodes = 1;  // a single provider, easy to kill
  Cloud cloud(cfg);
  WireResponse resp;
  bool vm_running = false;

  cloud.run([](Cloud* cl, WireResponse* resp, bool* vm_running) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 1);
    co_await dep.deploy_and_boot();
    Deployment::Instance& inst = dep.instance(0);
    RestProxyFrontend rest(*inst.proxy, "t");

    guestfs::SimpleFs* fs = dep.vm(0).fs();
    co_await fs->write_file("/data/x.bin", Buffer::pattern(100'000, 1));
    co_await fs->sync();
    cl->blob_store()->fail_node(inst.node);

    WireRequest req;
    req.method = "POST";
    req.path = "/checkpoint";
    req.params["token"] = "t";
    *resp = parse_response(co_await rest.handle(encode_request(req),
                                                *inst.vm, *inst.mirror));
    *vm_running = !inst.vm->paused() && !inst.vm->destroyed();
  }(&cloud, &resp, &vm_running));

  EXPECT_EQ(resp.status, 500);
  EXPECT_FALSE(resp.fields.at("error").empty());
  EXPECT_TRUE(vm_running);
}

}  // namespace
}  // namespace blobcr::core
