// Cross-repo federation tests: multi-zone BlobStores joined by
// federation::Fabric. Commit affinity lands each instance's checkpoints in
// its own zone's store; the flush drain replicates manifests, catalog
// frames and chunk payloads to sibling zones; restart fetches resolve
// nearest-zone-first (local replica before WAN before origin); and the
// capstone drill — kill an entire zone's BlobStore mid-run — restarts every
// Complete checkpoint bit-exactly from the surviving zone, including a
// fresh driver that recovers the catalog from replicated frames alone.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "blob/client.h"
#include "core/blobcr.h"
#include "cr/session.h"
#include "federation/federation.h"
#include "flush/flush_agent.h"
#include "sim/sim.h"

namespace blobcr {
namespace {

using common::Buffer;
using core::Backend;
using core::Cloud;
using core::CloudConfig;
using core::Deployment;
using cr::CheckpointRecord;
using cr::RecordState;
using cr::Selector;
using cr::Session;
using sim::Task;

CloudConfig fed_cfg(std::size_t zones, std::size_t compute_nodes = 8) {
  CloudConfig cfg;
  cfg.compute_nodes = compute_nodes;
  cfg.metadata_nodes = 2;
  cfg.backend = Backend::BlobCR;
  cfg.flush.enabled = true;  // zone failover needs drained manifests
  cfg.federation.zones = zones;
  cfg.os = vm::GuestOsConfig::test_tiny();
  cfg.vm.os_ram_bytes = 20 * common::kMB;
  return cfg;
}

Task<> write_state(vm::VmInstance* vm, std::uint64_t seed) {
  guestfs::SimpleFs* fs = vm->fs();
  co_await fs->write_file("/data/state.bin", Buffer::pattern(250'000, seed));
  co_await fs->sync();
}

Task<bool> state_matches(vm::VmInstance* vm, std::uint64_t seed) {
  const Buffer state = co_await vm->fs()->read_file("/data/state.bin");
  co_return state == Buffer::pattern(250'000, seed);
}

// ---------------------------------------------------------------------------
// Construction: zone slabs get their own stores with disjoint id spaces,
// and the node->zone / blob->zone maps agree with the layout.
// ---------------------------------------------------------------------------

TEST(FederationTest, ZoneLayoutAndIdSpaces) {
  Cloud cloud(fed_cfg(2, 8));
  ASSERT_EQ(cloud.zones(), 2u);
  federation::Fabric* fed = cloud.federation();
  ASSERT_NE(fed, nullptr);
  EXPECT_TRUE(fed->enabled());

  // Compute slab split 4/4.
  EXPECT_EQ(fed->zone_of_node(0), 0u);
  EXPECT_EQ(fed->zone_of_node(3), 0u);
  EXPECT_EQ(fed->zone_of_node(4), 1u);
  EXPECT_EQ(fed->zone_of_node(7), 1u);

  blob::BlobStore* z0 = cloud.blob_store(0);
  blob::BlobStore* z1 = cloud.blob_store(1);
  ASSERT_NE(z0, nullptr);
  ASSERT_NE(z1, nullptr);
  EXPECT_EQ(z0->config().zone, 0u);
  EXPECT_EQ(z1->config().zone, 1u);

  cloud.run([](Cloud* cl) -> Task<> {
    co_await cl->provision_base_image();
    // Per-zone base images: ids decode to their home zone, and each zone's
    // store resolves its own.
    const blob::BlobId b0 = cl->base_blob(0);
    const blob::BlobId b1 = cl->base_blob(1);
    EXPECT_EQ(federation::Fabric::zone_of_blob(b0), 0u);
    EXPECT_EQ(federation::Fabric::zone_of_blob(b1), 1u);
    EXPECT_EQ(cl->store_of_blob(b0), cl->blob_store(0));
    EXPECT_EQ(cl->store_of_blob(b1), cl->blob_store(1));
  }(&cloud));
}

// ---------------------------------------------------------------------------
// Commit affinity + async drain replication: an instance on zone-0 nodes
// commits into the zone-0 store; the drain registers a federated manifest
// and floor-copies the version's chunks into the buddy zone.
// ---------------------------------------------------------------------------

TEST(FederationTest, DrainReplicatesManifestAndFloorCopies) {
  Cloud cloud(fed_cfg(2, 8));
  cloud.run([](Cloud* cl) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 1);  // node 0 -> zone 0
    Session session(dep);
    co_await dep.deploy_and_boot();
    co_await write_state(&dep.vm(0), 7);
    const CheckpointRecord rec = co_await session.checkpoint("affinity");
    EXPECT_EQ(rec.state, RecordState::Complete);

    federation::Fabric* fed = cl->federation();
    const core::InstanceSnapshot& s = rec.snapshots.at(0);
    EXPECT_EQ(federation::Fabric::zone_of_blob(s.image), 0u)
        << "commit did not land in the instance's own zone";
    EXPECT_TRUE(fed->has_manifest(s.image, s.version));
    EXPECT_GT(fed->replicated_chunks(), 0u);
    EXPECT_GT(fed->replicated_bytes(), 0u);
    EXPECT_GT(fed->manifest_bytes(), 0u);
    EXPECT_GT(fed->catalog_bytes(), 0u);  // catalog frames crossed zones too
  }(&cloud));
}

// ---------------------------------------------------------------------------
// Nearest-zone serving: a reader restarting in a foreign zone with
// replication OFF pulls over the WAN class from the origin zone; with floor
// replication ON the same restart serves from its local zone's replicas and
// ships (almost) nothing over the WAN.
// ---------------------------------------------------------------------------

TEST(FederationTest, NearestZoneRestartPrefersLocalReplicas) {
  auto wan_bytes_after_foreign_restart = [](bool replicate) {
    CloudConfig cfg = fed_cfg(2, 8);
    cfg.federation.replicate = replicate;
    Cloud cloud(cfg);
    std::uint64_t wan = 0;
    cloud.run([](Cloud* cl, std::uint64_t* wan) -> Task<> {
      co_await cl->provision_base_image();
      {
        Deployment dep(*cl, 1);
        Session session(dep);
        co_await dep.deploy_and_boot();
        co_await write_state(&dep.vm(0), 21);
        (void)co_await session.checkpoint("wan");
        dep.destroy_all();
      }
      // Fresh driver restarts the checkpoint onto a zone-1 node; the image
      // (and with replication off, every chunk) lives in zone 0.
      Deployment dep2(*cl, 1);
      Session session2(dep2);
      (void)co_await session2.restart(Selector::latest(), /*node_offset=*/4,
                                      /*cold_caches=*/true);
      EXPECT_TRUE(co_await state_matches(&dep2.vm(0), 21));
      *wan = dep2.boot_wan_bytes();
    }(&cloud, &wan));
    return wan;
  };

  const std::uint64_t wan_unreplicated = wan_bytes_after_foreign_restart(false);
  const std::uint64_t wan_replicated = wan_bytes_after_foreign_restart(true);
  EXPECT_GT(wan_unreplicated, 0u)
      << "origin-zone fetches must ride the WAN class";
  EXPECT_LT(wan_replicated, wan_unreplicated)
      << "floor replicas in the reader's zone should displace WAN fetches";
}

// ---------------------------------------------------------------------------
// The capstone drill: kill an entire zone's BlobStore mid-run. A fresh
// driver on the surviving zone recovers the catalog from replicated frames,
// adopts the dead zone's version via the federated manifest, and restores
// guest state bit-exactly from the surviving replicas.
// ---------------------------------------------------------------------------

TEST(FederationTest, ZoneLossRestartIsBitExactFromSurvivor) {
  Cloud cloud(fed_cfg(2, 8));
  bool ok0 = false, ok1 = false;
  cloud.run([](Cloud* cl, bool* ok0, bool* ok1) -> Task<> {
    co_await cl->provision_base_image();
    {
      // Both instances on zone-0 nodes; checkpoints land in zone 0.
      auto dep = std::make_unique<Deployment>(*cl, 2);
      auto session = std::make_unique<Session>(*dep);
      co_await dep->deploy_and_boot();
      co_await write_state(&dep->vm(0), 100);
      co_await write_state(&dep->vm(1), 101);
      const CheckpointRecord rec = co_await session->checkpoint("pre-loss");
      EXPECT_EQ(rec.state, RecordState::Complete);
      dep->destroy_all();
      // Total driver loss: no in-memory object survives this block.
    }

    // The whole of zone 0 — every data provider of its store — dies.
    cl->federation()->fail_zone(0);
    EXPECT_FALSE(cl->federation()->alive(0));

    // Fresh driver on the survivor: list + restart onto zone-1 nodes.
    Deployment dep2(*cl, 2);
    Session session2(dep2);
    const CheckpointRecord rec = co_await session2.restart(
        Selector::latest(), /*node_offset=*/4, /*cold_caches=*/true);
    EXPECT_EQ(rec.tag, "pre-loss");
    *ok0 = co_await state_matches(&dep2.vm(0), 100);
    *ok1 = co_await state_matches(&dep2.vm(1), 101);

    // The catalog rehomed: its log now lives on the surviving store, and
    // the lineage is listable.
    const std::vector<CheckpointRecord> records = co_await session2.list();
    EXPECT_EQ(records.size(), 1u);
    if (!records.empty()) {
      EXPECT_EQ(records[0].state, RecordState::Complete);
    }

    // Post-loss life goes on: the restarted deployment checkpoints into
    // the surviving zone and restores from it.
    co_await write_state(&dep2.vm(0), 200);
    const CheckpointRecord rec2 = co_await session2.checkpoint("post-loss");
    EXPECT_EQ(rec2.state, RecordState::Complete);
    EXPECT_EQ(federation::Fabric::zone_of_blob(rec2.snapshots.at(0).image),
              1u);
  }(&cloud, &ok0, &ok1));
  EXPECT_TRUE(ok0);
  EXPECT_TRUE(ok1);
}

// A never-drained (synchronous-commit) version cannot fail over: the
// federation refuses the restart loudly instead of serving a torn image.
TEST(FederationTest, ZoneLossWithoutManifestRefusesRestart) {
  CloudConfig cfg = fed_cfg(2, 8);
  cfg.flush.enabled = false;  // synchronous commits: no drain, no manifest
  Cloud cloud(cfg);
  cloud.run([](Cloud* cl) -> Task<> {
    co_await cl->provision_base_image();
    {
      Deployment dep(*cl, 1);
      Session session(dep);
      co_await dep.deploy_and_boot();
      co_await write_state(&dep.vm(0), 5);
      (void)co_await session.checkpoint("sync");
      dep.destroy_all();
    }
    cl->federation()->fail_zone(0);
    Deployment dep2(*cl, 1);
    Session session2(dep2);
    bool threw = false;
    try {
      (void)co_await session2.restart(Selector::latest(), /*node_offset=*/4,
                                      /*cold_caches=*/true);
    } catch (const blob::BlobError&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << "restart of a never-drained version from a dead "
                          "zone must fail loudly";
  }(&cloud));
}

// ---------------------------------------------------------------------------
// Three zones + hot budget: popularity-ordered extra copies land beyond the
// buddy zone, so a third zone holds replicas too.
// ---------------------------------------------------------------------------

TEST(FederationTest, HotBudgetPushesCopiesBeyondBuddyZone) {
  CloudConfig cfg = fed_cfg(3, 9);
  cfg.federation.hot_budget_bytes = 64 * common::kMB;
  Cloud cloud(cfg);
  cloud.run([](Cloud* cl) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 1);
    Session session(dep);
    co_await dep.deploy_and_boot();
    co_await write_state(&dep.vm(0), 9);
    (void)co_await session.checkpoint("hot");

    // Zones 1 AND 2 must hold copies (floor covers the buddy; the hot
    // budget covers the rest).
    std::uint64_t z1 = 0, z2 = 0;
    for (const auto& p : cl->blob_store(1)->providers()) {
      z1 += p->stored_bytes();
    }
    for (const auto& p : cl->blob_store(2)->providers()) {
      z2 += p->stored_bytes();
    }
    EXPECT_GT(z1, 0u) << "floor copies missing from the buddy zone";
    EXPECT_GT(z2, 0u) << "hot copies missing from the third zone";

    // And the zone-loss drill still holds when restarting into the THIRD
    // zone: hot copies serve locally, the rest pulls from the buddy zone.
    cl->federation()->fail_zone(0);
    Deployment dep2(*cl, 1);
    Session session2(dep2);
    (void)co_await session2.restart(Selector::latest(), /*node_offset=*/6,
                                    /*cold_caches=*/true);
    EXPECT_TRUE(co_await state_matches(&dep2.vm(0), 9));
  }(&cloud));
}

// ---------------------------------------------------------------------------
// Single-zone configs build the classic layout and leave federation off.
// ---------------------------------------------------------------------------

TEST(FederationTest, SingleZoneHasNoFederation) {
  Cloud cloud(fed_cfg(1, 4));
  EXPECT_EQ(cloud.zones(), 1u);
  EXPECT_EQ(cloud.federation(), nullptr);
  cloud.run([](Cloud* cl) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 1);
    Session session(dep);
    co_await dep.deploy_and_boot();
    co_await write_state(&dep.vm(0), 3);
    const CheckpointRecord rec = co_await session.checkpoint();
    EXPECT_EQ(rec.state, RecordState::Complete);
    (void)co_await session.restart(Selector::latest(), /*node_offset=*/1);
    EXPECT_TRUE(co_await state_matches(&dep.vm(0), 3));
  }(&cloud));
}

}  // namespace
}  // namespace blobcr
