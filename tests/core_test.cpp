// Tests for the mirroring module: lazy fetch, local COW, CLONE/COMMIT
// semantics, partial-chunk copy-up, adaptive prefetching, and the
// checkpointing proxy.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "blob/client.h"
#include "core/mirror_device.h"
#include "core/proxy.h"
#include "reduce/reducer.h"
#include "sim/sim.h"
#include "vm/vm_instance.h"

namespace blobcr::core {
namespace {

using common::Buffer;
using sim::Simulation;
using sim::Task;
using sim::Time;

constexpr std::uint64_t kChunk = 4096;
constexpr std::uint64_t kImage = 64 * kChunk;

struct TestRig {
  Simulation sim;
  std::unique_ptr<net::Fabric> fabric;
  std::vector<std::unique_ptr<storage::Disk>> disks;
  std::unique_ptr<blob::BlobStore> store;
  blob::BlobId base = 0;
  // Host nodes for mirrors are the last two nodes.
  net::NodeId host_a = 0;
  net::NodeId host_b = 0;

  TestRig() {
    const std::size_t n_data = 4;
    const std::size_t total = 2 + 2 + n_data + 2;  // mgr,pm,meta*2,data,hosts
    net::Fabric::Config fcfg;
    fcfg.node_count = total;
    fcfg.nic_bandwidth_bps = 100e6;
    fcfg.latency = 100 * sim::kMicrosecond;
    fabric = std::make_unique<net::Fabric>(sim, fcfg);
    blob::BlobStore::Config cfg;
    cfg.version_manager_node = 0;
    cfg.provider_manager_node = 1;
    cfg.metadata_nodes = {2, 3};
    storage::Disk::Config dcfg;
    dcfg.bandwidth_bps = 1e9;
    dcfg.position_cost = sim::kMillisecond;
    for (std::size_t i = 0; i < n_data + 2; ++i) {
      // Piecewise append: `"d" + std::to_string(i)` (const char* + rvalue
      // string) trips gcc-12's -Wrestrict false positive at -O3.
      std::string dname = "d";
      dname += std::to_string(i);
      disks.push_back(std::make_unique<storage::Disk>(sim, dname, dcfg));
    }
    for (std::size_t i = 0; i < n_data; ++i) {
      cfg.data_providers.push_back(
          {static_cast<net::NodeId>(4 + i), disks[i].get(), 1});
    }
    cfg.default_chunk_size = kChunk;
    cfg.tree_depth = 10;
    store = std::make_unique<blob::BlobStore>(sim, *fabric, cfg);
    host_a = static_cast<net::NodeId>(total - 2);
    host_b = static_cast<net::NodeId>(total - 1);
  }

  /// Writes a base image blob with deterministic content.
  void make_base() {
    run([](TestRig* rig) -> Task<> {
      blob::BlobClient client(*rig->store, rig->host_a);
      rig->base = co_await client.create(kChunk);
      co_await client.write(rig->base, 0, Buffer::pattern(kImage, 42));
    }(this));
  }

  std::unique_ptr<MirrorDevice> make_mirror(net::NodeId host,
                                            PrefetchBus* bus = nullptr) {
    MirrorDevice::Config cfg;
    cfg.capacity = kImage;
    return std::make_unique<MirrorDevice>(
        *store, host, *disks[4 + (host == host_a ? 0 : 1)], 99, base, 1, cfg,
        bus);
  }

  void run(Task<> t) {
    auto p = sim.spawn("test", std::move(t));
    sim.run();
    if (p->error()) std::rethrow_exception(p->error());
  }
};

TEST(MirrorTest, LazyFetchOnFirstRead) {
  TestRig rig;
  rig.make_base();
  auto mirror = rig.make_mirror(rig.host_a);
  Buffer got;
  rig.run([](MirrorDevice* m, Buffer& out) -> Task<> {
    out = co_await m->read(kChunk, 2 * kChunk);
  }(mirror.get(), got));
  EXPECT_EQ(got, Buffer::pattern(kImage, 42).slice(kChunk, 2 * kChunk));
  EXPECT_EQ(mirror->remote_bytes_fetched(), 2 * kChunk);
}

TEST(MirrorTest, SecondReadServedLocally) {
  TestRig rig;
  rig.make_base();
  auto mirror = rig.make_mirror(rig.host_a);
  rig.run([](MirrorDevice* m) -> Task<> {
    (void)co_await m->read(0, kChunk);
    (void)co_await m->read(0, kChunk);
  }(mirror.get()));
  EXPECT_EQ(mirror->remote_bytes_fetched(), kChunk);
}

TEST(MirrorTest, WritesAreLocalAndDirty) {
  TestRig rig;
  rig.make_base();
  auto mirror = rig.make_mirror(rig.host_a);
  rig.run([](MirrorDevice* m) -> Task<> {
    co_await m->write(0, Buffer::pattern(100, 7));
  }(mirror.get()));
  EXPECT_EQ(mirror->dirty_bytes(), 100u);
  EXPECT_EQ(mirror->remote_bytes_fetched(), 0u);
}

TEST(MirrorTest, ReadSeesLocalWriteOverBacking) {
  TestRig rig;
  rig.make_base();
  auto mirror = rig.make_mirror(rig.host_a);
  Buffer got;
  rig.run([](MirrorDevice* m, Buffer& out) -> Task<> {
    co_await m->write(10, Buffer::pattern(100, 7));
    out = co_await m->read(0, kChunk);
  }(mirror.get(), got));
  Buffer expect = Buffer::pattern(kImage, 42).slice(0, kChunk);
  expect.overwrite(10, Buffer::pattern(100, 7));
  EXPECT_EQ(got, expect);
}

TEST(MirrorTest, CommitCreatesSnapshotWithChunkRounding) {
  TestRig rig;
  rig.make_base();
  auto mirror = rig.make_mirror(rig.host_a);
  blob::VersionId v = 0;
  rig.run([](MirrorDevice* m, blob::VersionId& out) -> Task<> {
    co_await m->write(10, Buffer::pattern(100, 7));  // partial chunk
    out = co_await m->ioctl_commit();
  }(mirror.get(), v));
  // Clone happened implicitly; the commit shipped one whole chunk.
  EXPECT_NE(mirror->checkpoint_blob(), 0u);
  EXPECT_NE(mirror->checkpoint_blob(), rig.base);
  EXPECT_EQ(v, 2u);  // version 1 = the clone, 2 = first commit
  EXPECT_EQ(mirror->last_commit_payload(), kChunk);
  EXPECT_EQ(mirror->dirty_bytes(), 0u);
}

TEST(MirrorTest, PartialChunkCommitCopiesUpFromBacking) {
  TestRig rig;
  rig.make_base();
  auto mirror = rig.make_mirror(rig.host_a);
  Buffer snapshot_content;
  rig.run([](TestRig* r, MirrorDevice* m, Buffer& out) -> Task<> {
    co_await m->write(10, Buffer::pattern(100, 7));
    const blob::VersionId v = co_await m->ioctl_commit();
    // Read the committed chunk back from the repository directly.
    blob::BlobClient client(*r->store, r->host_b);
    out = co_await client.read(m->checkpoint_blob(), v, 0, kChunk);
  }(&rig, mirror.get(), snapshot_content));
  Buffer expect = Buffer::pattern(kImage, 42).slice(0, kChunk);
  expect.overwrite(10, Buffer::pattern(100, 7));
  EXPECT_EQ(snapshot_content, expect);
}

TEST(MirrorTest, SecondCommitShipsOnlyNewDelta) {
  TestRig rig;
  rig.make_base();
  auto mirror = rig.make_mirror(rig.host_a);
  std::uint64_t payload1 = 0;
  std::uint64_t payload2 = 0;
  rig.run([](MirrorDevice* m, std::uint64_t& p1, std::uint64_t& p2)
               -> Task<> {
    co_await m->write(0, Buffer::pattern(8 * kChunk, 1));
    co_await m->ioctl_commit();
    p1 = m->last_commit_payload();
    co_await m->write(2 * kChunk, Buffer::pattern(kChunk, 2));
    co_await m->ioctl_commit();
    p2 = m->last_commit_payload();
  }(mirror.get(), payload1, payload2));
  EXPECT_EQ(payload1, 8 * kChunk);
  EXPECT_EQ(payload2, kChunk);
}

TEST(MirrorTest, CommitWithNoDirtyDataKeepsLastVersion) {
  TestRig rig;
  rig.make_base();
  auto mirror = rig.make_mirror(rig.host_a);
  blob::VersionId v1 = 0;
  blob::VersionId v2 = 0;
  rig.run([](MirrorDevice* m, blob::VersionId& a, blob::VersionId& b)
               -> Task<> {
    co_await m->write(0, Buffer::pattern(kChunk, 1));
    a = co_await m->ioctl_commit();
    b = co_await m->ioctl_commit();  // nothing new
  }(mirror.get(), v1, v2));
  EXPECT_EQ(v1, v2);
}

TEST(MirrorTest, OldSnapshotSurvivesNewCommits) {
  TestRig rig;
  rig.make_base();
  auto mirror = rig.make_mirror(rig.host_a);
  Buffer old_view;
  rig.run([](TestRig* r, MirrorDevice* m, Buffer& out) -> Task<> {
    co_await m->write(0, Buffer::pattern(kChunk, 1));
    const blob::VersionId v1 = co_await m->ioctl_commit();
    co_await m->write(0, Buffer::pattern(kChunk, 2));
    (void)co_await m->ioctl_commit();
    blob::BlobClient client(*r->store, r->host_b);
    out = co_await client.read(m->checkpoint_blob(), v1, 0, kChunk);
  }(&rig, mirror.get(), old_view));
  EXPECT_EQ(old_view, Buffer::pattern(kChunk, 1));
}

TEST(MirrorTest, RestartedMirrorCommitsIntoBackingImage) {
  TestRig rig;
  rig.make_base();
  auto first = rig.make_mirror(rig.host_a);
  blob::BlobId image = 0;
  blob::VersionId snap = 0;
  rig.run([](MirrorDevice* m, blob::BlobId& img, blob::VersionId& v)
               -> Task<> {
    co_await m->write(0, Buffer::pattern(kChunk, 1));
    v = co_await m->ioctl_commit();
    img = m->checkpoint_blob();
  }(first.get(), image, snap));

  // Restart: a new mirror backed by the snapshot, committing into it.
  MirrorDevice::Config mcfg;
  mcfg.capacity = kImage;
  MirrorDevice restarted(*rig.store, rig.host_b, *rig.disks[5], 98, image,
                         snap, mcfg);
  restarted.set_checkpoint_blob(image, snap);
  blob::VersionId v2 = 0;
  Buffer view;
  rig.run([](TestRig*, MirrorDevice* m, blob::VersionId& v, Buffer& out)
              -> Task<> {
    const Buffer state = co_await m->read(0, kChunk);  // restored content
    out = state;
    co_await m->write(kChunk, Buffer::pattern(kChunk, 3));
    v = co_await m->ioctl_commit();
  }(&rig, &restarted, v2, view));
  EXPECT_EQ(view, Buffer::pattern(kChunk, 1));
  EXPECT_EQ(restarted.checkpoint_blob(), image);
  EXPECT_GT(v2, snap);
}

TEST(MirrorTest, PrefetchBusPushesToPeers) {
  TestRig rig;
  rig.make_base();
  PrefetchBus bus(rig.sim, 200 * sim::kMicrosecond);
  auto m1 = rig.make_mirror(rig.host_a, &bus);
  auto m2 = rig.make_mirror(rig.host_b, &bus);
  EXPECT_EQ(bus.attached(), 2u);
  rig.run([](TestRig* r, MirrorDevice* a) -> Task<> {
    (void)co_await a->read(0, 4 * kChunk);
    // Give the bus + background fetches time to complete.
    co_await r->sim.delay(5 * sim::kSecond);
  }(&rig, m1.get()));
  // m2 never read anything, yet the hinted range arrived ahead of demand.
  EXPECT_GE(m2->locally_available_bytes(), 4 * kChunk);
  EXPECT_GE(m2->remote_bytes_fetched(), 4 * kChunk);
}

TEST(MirrorTest, PrefetchBusAnnouncesOnlyUncoveredGaps) {
  TestRig rig;
  rig.make_base();
  PrefetchBus bus(rig.sim, 200 * sim::kMicrosecond);
  auto m1 = rig.make_mirror(rig.host_a, &bus);
  auto m2 = rig.make_mirror(rig.host_b, &bus);
  rig.run([](TestRig* r, MirrorDevice* a) -> Task<> {
    // First demand fetch announces [0, 4) chunks.
    (void)co_await a->read(0, 4 * kChunk);
    co_await r->sim.delay(5 * sim::kSecond);
    // Overlapping read [2, 6): only the uncovered tail [4, 6) may be
    // announced — the overlap must not be re-broadcast.
    (void)co_await a->read(2 * kChunk, 4 * kChunk);
    co_await r->sim.delay(5 * sim::kSecond);
  }(&rig, m1.get()));
  EXPECT_EQ(bus.hinted_bytes(), 6 * kChunk);
  // Fully-covered announcements stay suppressed entirely.
  const std::uint64_t hints = bus.hints_sent();
  rig.run([](TestRig* r, MirrorDevice* a) -> Task<> {
    (void)co_await a->read(kChunk, 2 * kChunk);
    co_await r->sim.delay(sim::kSecond);
  }(&rig, m1.get()));
  EXPECT_EQ(bus.hints_sent(), hints);
  EXPECT_EQ(m2->remote_bytes_fetched(), 6 * kChunk);
}

TEST(MirrorTest, ReducedCommitShipsLessAndRoundTrips) {
  TestRig rig;
  rig.make_base();
  reduce::ReductionConfig rcfg;
  rcfg.enabled = true;
  reduce::Reducer reducer(*rig.store, rcfg);
  auto m1 = rig.make_mirror(rig.host_a);
  MirrorDevice::Config mcfg;
  mcfg.capacity = kImage;
  MirrorDevice m2(*rig.store, rig.host_b, *rig.disks[5], 97, rig.base, 1,
                  mcfg, nullptr, &reducer);

  // Rank 1 (unreduced) establishes nothing in the index; rank 2 commits a
  // mix of duplicate-able, zero and unique chunks through the reducer.
  Buffer payload = Buffer::pattern(2 * kChunk, 50);  // duplicated below
  payload.append(Buffer::zeros(2 * kChunk));
  payload.append(Buffer::pattern(2 * kChunk, 50));   // dup of chunks 0-1
  payload.append(Buffer::pattern(kChunk, 51));       // unique
  blob::VersionId v = 0;
  Buffer back;
  rig.run([](TestRig* r, MirrorDevice* m, const Buffer* payload,
             blob::VersionId& v_out, Buffer& back) -> Task<> {
    co_await m->write(0, *payload);
    v_out = co_await m->ioctl_commit();
    // Read back through a fresh client straight from the repository.
    blob::BlobClient client(*r->store, r->host_a);
    back = co_await client.read(m->checkpoint_blob(), v_out, 0,
                                payload->size());
  }(&rig, &m2, &payload, v, back));
  EXPECT_EQ(back, payload);
  EXPECT_EQ(m2.last_commit_payload(), 7 * kChunk);
  // Shipped: 2 unique pattern chunks + 1 unique chunk; zeros and the
  // duplicate pair stayed home.
  EXPECT_EQ(m2.last_commit_shipped(), 3 * kChunk);
  EXPECT_EQ(reducer.stats().zero_chunks, 2u);
  EXPECT_EQ(reducer.stats().dedup_hits, 2u);
}

TEST(MirrorTest, PrefetchedReadIsFasterThanCold) {
  TestRig rig;
  rig.make_base();
  PrefetchBus bus(rig.sim, 200 * sim::kMicrosecond);
  auto m1 = rig.make_mirror(rig.host_a, &bus);
  auto m2 = rig.make_mirror(rig.host_b, &bus);
  sim::Duration cold = 0;
  sim::Duration warm = 0;
  rig.run([](TestRig* r, MirrorDevice* a, MirrorDevice* b,
             sim::Duration& cold_out, sim::Duration& warm_out) -> Task<> {
    const Time t0 = r->sim.now();
    (void)co_await a->read(0, 8 * kChunk);  // cold: remote fetch
    cold_out = r->sim.now() - t0;
    co_await r->sim.delay(5 * sim::kSecond);  // prefetch lands on b
    const Time t1 = r->sim.now();
    (void)co_await b->read(0, 8 * kChunk);  // warm: local
    warm_out = r->sim.now() - t1;
  }(&rig, m1.get(), m2.get(), cold, warm));
  EXPECT_LT(warm, cold);
}

TEST(ProxyTest, PausesVmDuringSnapshot) {
  TestRig rig;
  rig.make_base();
  auto mirror = rig.make_mirror(rig.host_a);
  vm::VmConfig vcfg;
  vcfg.name = "vm";
  vm::VmInstance vm(rig.sim, rig.host_a, *mirror, vcfg);
  CheckpointProxy proxy(rig.sim, *rig.fabric, rig.host_a);
  std::vector<Time> guest_progress;
  vm.start_guest("worker", [&](vm::GuestProcess& gp) -> Task<> {
    for (int i = 0; i < 200; ++i) {
      co_await gp.compute(10 * sim::kMillisecond);
      guest_progress.push_back(gp.vm().simulation().now());
    }
  });
  CheckpointProxy::Result result;
  rig.run([](TestRig*, CheckpointProxy* p, vm::VmInstance* v,
             MirrorDevice* m, CheckpointProxy::Result& out) -> Task<> {
    co_await m->write(0, Buffer::pattern(4 * kChunk, 9));
    out = co_await p->request_checkpoint(*v, *m);
  }(&rig, &proxy, &vm, mirror.get(), result));
  EXPECT_GT(result.vm_downtime, 0);
  EXPECT_EQ(result.payload_bytes, 4 * kChunk);
  EXPECT_NE(result.image, 0u);
  EXPECT_FALSE(vm.paused());
  EXPECT_EQ(proxy.requests_served(), 1u);
}

TEST(ProxyTest, RejectsForeignVm) {
  TestRig rig;
  rig.make_base();
  auto mirror = rig.make_mirror(rig.host_a);
  vm::VmConfig vcfg;
  vm::VmInstance vm(rig.sim, rig.host_a, *mirror, vcfg);
  CheckpointProxy proxy(rig.sim, *rig.fabric, rig.host_b);  // other node
  bool threw = false;
  rig.run([](CheckpointProxy* p, vm::VmInstance* v, MirrorDevice* m,
             bool& out) -> Task<> {
    try {
      (void)co_await p->request_checkpoint(*v, *m);
    } catch (const std::runtime_error&) {
      out = true;
    }
    co_return;
  }(&proxy, &vm, mirror.get(), threw));
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace blobcr::core
