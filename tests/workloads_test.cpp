// End-to-end tests for the HEP event-loop and k-mer scan workloads:
// exactly-once output via disk-snapshot I/O rollback (HEP) and lazy fetch
// of a shared read-only reference during runtime (k-mer).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "apps/hep.h"
#include "apps/kmer.h"
#include "core/blobcr.h"
#include "sim/sim.h"

namespace blobcr::apps {
namespace {

using common::Buffer;
using core::Backend;
using core::Cloud;
using core::CloudConfig;
using core::Deployment;
using core::GlobalCheckpoint;
using sim::Task;

CloudConfig tiny_cfg(Backend backend) {
  CloudConfig cfg;
  cfg.compute_nodes = 4;
  cfg.metadata_nodes = 2;
  cfg.backend = backend;
  cfg.replication = 1;
  cfg.os = vm::GuestOsConfig::test_tiny();
  cfg.vm.os_ram_bytes = 20 * common::kMB;
  return cfg;
}

HepConfig small_hep() {
  HepConfig cfg;
  cfg.total_events = 1'200;
  cfg.per_event_compute = 100 * sim::kMicrosecond;
  cfg.hit_probability = 0.2;
  cfg.hit_record_bytes = 256;
  cfg.histogram_bytes = 256 * 1024;
  cfg.sync_every_hits = 16;
  cfg.real_data = true;
  return cfg;
}

// ---------------------------------------------------------------------------
// HEP: pure-function properties (no cloud needed)
// ---------------------------------------------------------------------------

TEST(HepTest, HitDecisionsAreDeterministicPerRankAndEvent) {
  // is_hit is a pure function of (seed, rank, event): two instances agree.
  vm::VmConfig vmc;
  sim::Simulation sim;
  img::MemDevice dev(common::kMB);
  vm::VmInstance vm(sim, 0, dev, vmc);
  vm::GuestProcess p1(vm, "a", 0), p2(vm, "b", 1);
  HepRank a(p1, small_hep(), 3);
  HepRank b(p2, small_hep(), 3);
  HepRank other(p2, small_hep(), 4);
  int diff_vs_other = 0;
  for (std::uint64_t e = 0; e < 500; ++e) {
    EXPECT_EQ(a.is_hit(e), b.is_hit(e));
    diff_vs_other += a.is_hit(e) != other.is_hit(e) ? 1 : 0;
  }
  EXPECT_GT(diff_vs_other, 0);  // ranks have independent streams
}

TEST(HepTest, ExpectedHitsTracksProbability) {
  vm::VmConfig vmc;
  sim::Simulation sim;
  img::MemDevice dev(common::kMB);
  vm::VmInstance vm(sim, 0, dev, vmc);
  vm::GuestProcess p(vm, "a", 0);
  HepConfig cfg = small_hep();
  cfg.hit_probability = 0.25;
  HepRank r(p, cfg, 0);
  const double frac =
      static_cast<double>(r.expected_hits(4'000)) / 4'000.0;
  EXPECT_NEAR(frac, 0.25, 0.03);
  EXPECT_LE(r.expected_hits(100), r.expected_hits(200));
}

// ---------------------------------------------------------------------------
// HEP: in-cloud exactly-once pipeline
// ---------------------------------------------------------------------------

struct HepOut {
  std::uint64_t records_at_ckpt = 0;
  std::uint64_t records_after_extra = 0;
  std::uint64_t records_after_restore = 0;
  std::uint64_t records_final = 0;
  std::uint64_t expected_at_ckpt = 0;
  std::uint64_t expected_final = 0;
  std::uint64_t cursor_after_restore = 0;
  bool restore_ok = false;
};

/// Shared driver: process to 600, checkpoint + snapshot, process to 1200
/// (synced!), kill everything, restart, restore, re-process to 1200.
Task<> hep_driver(Cloud* cl, HepConfig cfg, HepOut* out) {
  co_await cl->provision_base_image();
  Deployment dep(*cl, 1);
  co_await dep.deploy_and_boot();

  auto state = std::make_shared<HepOut>();
  sim::Event phase_done(cl->simulation());

  dep.vm(0).start_guest("hep", [&dep, cfg, state,
                                &phase_done](vm::GuestProcess& gp) -> Task<> {
    HepRank hep(gp, cfg, 0);
    co_await hep.init();
    co_await hep.process_until(600);
    (void)co_await hep.write_checkpoint();
    co_await gp.vm().fs()->sync();
    (void)co_await dep.snapshot_instance(0);
    state->expected_at_ckpt = hep.expected_hits(600);
    state->records_at_ckpt = co_await hep.count_log_records();
    // Post-checkpoint work whose output will be rolled back — explicitly
    // synced so the bytes really are on the virtual disk when we kill it.
    co_await hep.process_until(1200);
    co_await gp.vm().fs()->sync();
    state->records_after_extra = co_await hep.count_log_records();
    state->expected_final = hep.expected_hits(1200);
    phase_done.set();
  });
  co_await phase_done.wait();
  co_await dep.vm(0).join_guests();

  const GlobalCheckpoint ckpt = dep.collect_last_snapshots();
  dep.destroy_all();
  co_await dep.restart_from(ckpt, 2);

  sim::Event recovered(cl->simulation());
  dep.vm(0).start_guest("hep-recover",
                        [cfg, state, &recovered](vm::GuestProcess& gp)
                            -> Task<> {
    HepRank hep(gp, cfg, 0);
    state->restore_ok = co_await hep.restore_checkpoint();
    state->cursor_after_restore = hep.cursor();
    state->records_after_restore = co_await hep.count_log_records();
    co_await hep.process_until(1200);
    co_await gp.vm().fs()->sync();
    state->records_final = co_await hep.count_log_records();
    recovered.set();
  });
  co_await recovered.wait();
  co_await dep.vm(0).join_guests();
  *out = *state;
}

TEST(HepCloudTest, LogRollsBackAndReplayIsExactlyOnce) {
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  HepOut out;
  cloud.run(hep_driver(&cloud, small_hep(), &out));

  EXPECT_TRUE(out.restore_ok);
  EXPECT_EQ(out.cursor_after_restore, 600u);
  // At checkpoint time the log held exactly the hits of events [0, 600).
  EXPECT_EQ(out.records_at_ckpt, out.expected_at_ckpt);
  // The extra processing appended more (and synced them to the disk).
  EXPECT_GT(out.records_after_extra, out.records_at_ckpt);
  // Restoring the disk snapshot rewound the log — even the synced tail.
  EXPECT_EQ(out.records_after_restore, out.expected_at_ckpt);
  // Replaying the lost events appends each hit exactly once.
  EXPECT_EQ(out.records_final, out.expected_final);
}

TEST(HepCloudTest, ExactlyOnceHoldsOnQcowDiskBackendToo) {
  Cloud cloud(tiny_cfg(Backend::Qcow2Disk));
  HepOut out;
  cloud.run(hep_driver(&cloud, small_hep(), &out));
  EXPECT_TRUE(out.restore_ok);
  EXPECT_EQ(out.records_after_restore, out.expected_at_ckpt);
  EXPECT_EQ(out.records_final, out.expected_final);
}

TEST(HepCloudTest, HistogramSurvivesRoundTripByDigest) {
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  struct Out {
    std::uint64_t digest_at_ckpt = 0;
    std::uint64_t digest_after_restore = 0;
    bool restore_ok = false;
  } out;
  cloud.run([](Cloud* cl, HepConfig cfg, Out* out) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 1);
    co_await dep.deploy_and_boot();
    sim::Event done(cl->simulation());
    dep.vm(0).start_guest("hep", [&dep, cfg, out,
                                  &done](vm::GuestProcess& gp) -> Task<> {
      HepRank hep(gp, cfg, 0);
      co_await hep.init();
      co_await hep.process_until(400);
      (void)co_await hep.write_checkpoint();
      co_await gp.vm().fs()->sync();
      (void)co_await dep.snapshot_instance(0);
      out->digest_at_ckpt = hep.state_digest();
      done.set();
    });
    co_await done.wait();
    co_await dep.vm(0).join_guests();
    const GlobalCheckpoint ckpt = dep.collect_last_snapshots();
    dep.destroy_all();
    co_await dep.restart_from(ckpt, 1);
    sim::Event done2(cl->simulation());
    dep.vm(0).start_guest("hep2", [cfg, out,
                                   &done2](vm::GuestProcess& gp) -> Task<> {
      HepRank hep(gp, cfg, 0);
      out->restore_ok = co_await hep.restore_checkpoint();
      out->digest_after_restore = hep.state_digest();
      done2.set();
    });
    co_await done2.wait();
    co_await dep.vm(0).join_guests();
  }(&cloud, small_hep(), &out));
  EXPECT_TRUE(out.restore_ok);
  EXPECT_EQ(out.digest_after_restore, out.digest_at_ckpt);
}

// ---------------------------------------------------------------------------
// k-mer: slice partition properties (no cloud needed)
// ---------------------------------------------------------------------------

TEST(KmerTest, SlicesPartitionReferenceExactly) {
  for (const int ranks : {1, 2, 3, 5, 8}) {
    KmerConfig cfg;
    cfg.reference_bytes = 10'000'001;  // deliberately not divisible
    cfg.ranks = ranks;
    std::uint64_t covered = 0;
    for (int r = 0; r < ranks; ++r) {
      EXPECT_EQ(cfg.slice_begin(r), r == 0 ? 0 : cfg.slice_end(r - 1));
      covered += cfg.slice_end(r) - cfg.slice_begin(r);
    }
    EXPECT_EQ(covered, cfg.reference_bytes);
    EXPECT_EQ(cfg.slice_end(ranks - 1), cfg.reference_bytes);
  }
}

TEST(KmerTest, InvalidRankThrows) {
  sim::Simulation sim;
  img::MemDevice dev(common::kMB);
  vm::VmConfig vmc;
  vm::VmInstance vm(sim, 0, dev, vmc);
  vm::GuestProcess p(vm, "a", 0);
  KmerConfig cfg;
  cfg.ranks = 2;
  EXPECT_THROW(KmerRank(p, cfg, 2), std::invalid_argument);
  EXPECT_THROW(KmerRank(p, cfg, -1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// k-mer: in-cloud scan / restart / lazy fetch
// ---------------------------------------------------------------------------

KmerConfig small_kmer() {
  KmerConfig cfg;
  cfg.reference_bytes = 4 * common::kMB;
  cfg.window_bytes = 256 * 1024;
  cfg.table_bytes = 128 * 1024;
  cfg.ranks = 1;
  cfg.real_data = true;
  return cfg;
}

CloudConfig kmer_cloud_cfg(Backend backend, const KmerConfig& kcfg) {
  CloudConfig cfg = tiny_cfg(backend);
  kcfg.add_reference_to(cfg.os);
  return cfg;
}

TEST(KmerCloudTest, UninterruptedScanIsDeterministic) {
  const KmerConfig kcfg = small_kmer();
  std::uint64_t digests[2] = {0, 0};
  for (int round = 0; round < 2; ++round) {
    Cloud cloud(kmer_cloud_cfg(Backend::BlobCR, kcfg));
    cloud.run([](Cloud* cl, KmerConfig kcfg,
                 std::uint64_t* out) -> Task<> {
      co_await cl->provision_base_image();
      Deployment dep(*cl, 1);
      co_await dep.deploy_and_boot();
      sim::Event done(cl->simulation());
      dep.vm(0).start_guest("kmer", [kcfg, out,
                                     &done](vm::GuestProcess& gp) -> Task<> {
        KmerRank scan(gp, kcfg, 0);
        co_await scan.init();
        co_await scan.scan_all();
        *out = scan.state_digest();
        done.set();
      });
      co_await done.wait();
      co_await dep.vm(0).join_guests();
    }(&cloud, kcfg, &digests[round]));
  }
  EXPECT_NE(digests[0], 0u);
  EXPECT_EQ(digests[0], digests[1]);
}

TEST(KmerCloudTest, InterruptedScanResumesToSameResult) {
  const KmerConfig kcfg = small_kmer();

  // Ground truth: one uninterrupted scan.
  std::uint64_t expected = 0;
  {
    Cloud cloud(kmer_cloud_cfg(Backend::BlobCR, kcfg));
    cloud.run([](Cloud* cl, KmerConfig kcfg, std::uint64_t* out) -> Task<> {
      co_await cl->provision_base_image();
      Deployment dep(*cl, 1);
      co_await dep.deploy_and_boot();
      sim::Event done(cl->simulation());
      dep.vm(0).start_guest("kmer", [kcfg, out,
                                     &done](vm::GuestProcess& gp) -> Task<> {
        KmerRank scan(gp, kcfg, 0);
        co_await scan.init();
        co_await scan.scan_all();
        *out = scan.state_digest();
        done.set();
      });
      co_await done.wait();
      co_await dep.vm(0).join_guests();
    }(&cloud, kcfg, &expected));
  }

  // Interrupted run: scan half, checkpoint, kill, restart elsewhere, finish.
  struct Out {
    bool restore_ok = false;
    std::uint64_t resumed_offset = 0;
    std::uint64_t final_digest = 0;
  } out;
  Cloud cloud(kmer_cloud_cfg(Backend::BlobCR, kcfg));
  cloud.run([](Cloud* cl, KmerConfig kcfg, Out* out) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 1);
    co_await dep.deploy_and_boot();
    sim::Event done(cl->simulation());
    dep.vm(0).start_guest("kmer", [&dep, kcfg,
                                   &done](vm::GuestProcess& gp) -> Task<> {
      KmerRank scan(gp, kcfg, 0);
      co_await scan.init();
      co_await scan.scan_until(kcfg.reference_bytes / 2);
      (void)co_await scan.write_checkpoint();
      co_await gp.vm().fs()->sync();
      (void)co_await dep.snapshot_instance(0);
      done.set();
    });
    co_await done.wait();
    co_await dep.vm(0).join_guests();

    const GlobalCheckpoint ckpt = dep.collect_last_snapshots();
    dep.destroy_all();
    co_await dep.restart_from(ckpt, 2);

    sim::Event done2(cl->simulation());
    dep.vm(0).start_guest("kmer2", [kcfg, out,
                                    &done2](vm::GuestProcess& gp) -> Task<> {
      KmerRank scan(gp, kcfg, 0);
      co_await scan.init();
      out->restore_ok = co_await scan.restore_checkpoint();
      out->resumed_offset = scan.offset();
      co_await scan.scan_all();
      out->final_digest = scan.state_digest();
      done2.set();
    });
    co_await done2.wait();
    co_await dep.vm(0).join_guests();
  }(&cloud, kcfg, &out));

  EXPECT_TRUE(out.restore_ok);
  EXPECT_EQ(out.resumed_offset, kcfg.reference_bytes / 2);
  EXPECT_EQ(out.final_digest, expected);
}

TEST(KmerCloudTest, ScanLazilyFetchesOnlyTouchedReference) {
  const KmerConfig kcfg = small_kmer();
  struct Out {
    std::uint64_t fetched_before = 0;
    std::uint64_t fetched_half = 0;
    std::uint64_t fetched_full = 0;
  } out;
  Cloud cloud(kmer_cloud_cfg(Backend::BlobCR, kcfg));
  cloud.run([](Cloud* cl, KmerConfig kcfg, Out* out) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 1);
    co_await dep.deploy_and_boot();
    out->fetched_before = dep.instance(0).mirror->remote_bytes_fetched();
    sim::Event done(cl->simulation());
    dep.vm(0).start_guest("kmer", [&dep, kcfg, out,
                                   &done](vm::GuestProcess& gp) -> Task<> {
      KmerRank scan(gp, kcfg, 0);
      co_await scan.init();
      co_await scan.scan_until(kcfg.reference_bytes / 2);
      out->fetched_half = dep.instance(0).mirror->remote_bytes_fetched();
      co_await scan.scan_all();
      out->fetched_full = dep.instance(0).mirror->remote_bytes_fetched();
      done.set();
    });
    co_await done.wait();
    co_await dep.vm(0).join_guests();
  }(&cloud, kcfg, &out));

  const std::uint64_t half_delta = out.fetched_half - out.fetched_before;
  const std::uint64_t full_delta = out.fetched_full - out.fetched_before;
  // The first half of the scan fetched at least half the reference...
  EXPECT_GE(half_delta, kcfg.reference_bytes / 2);
  // ...but left a substantial part of it untouched (no eager prefetch).
  EXPECT_LT(half_delta, full_delta);
  EXPECT_GE(full_delta, kcfg.reference_bytes);
}

}  // namespace
}  // namespace blobcr::apps
