// Tests for the snapshot data-reduction subsystem: zero suppression,
// content-addressed dedup (across clients/"ranks", across versions, within
// one commit), compression (RLE + phantom ratio model), GC refcounting of
// shared chunks and digest-index invalidation after reclaim.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/strutil.h"
#include "blob/client.h"
#include "blob/gc.h"
#include "blob/store.h"
#include "reduce/reducer.h"
#include "reduce/rle.h"
#include "sim/sim.h"

namespace blobcr::reduce {
namespace {

using blob::BlobClient;
using blob::BlobId;
using blob::BlobStore;
using blob::GarbageCollector;
using blob::VersionId;
using common::Buffer;
using sim::Simulation;
using sim::Task;

constexpr std::uint64_t kChunk = 1024;

/// A small in-memory cluster hosting one BlobStore (mirrors blob_test).
struct TestCluster {
  Simulation sim;
  std::unique_ptr<net::Fabric> fabric;
  std::vector<std::unique_ptr<storage::Disk>> disks;
  std::unique_ptr<BlobStore> store;
  net::NodeId client_node = 0;

  explicit TestCluster(std::size_t n_data = 4, int replication = 1,
                       double disk_bps = 1e9) {
    const std::size_t n_meta = 2;
    const std::size_t total = 2 + n_meta + n_data + 1;
    net::Fabric::Config fcfg;
    fcfg.node_count = total;
    fcfg.nic_bandwidth_bps = 1e9;
    fcfg.latency = 100 * sim::kMicrosecond;
    fabric = std::make_unique<net::Fabric>(sim, fcfg);

    BlobStore::Config cfg;
    cfg.version_manager_node = 0;
    cfg.provider_manager_node = 1;
    for (std::size_t i = 0; i < n_meta; ++i) {
      cfg.metadata_nodes.push_back(static_cast<net::NodeId>(2 + i));
    }
    storage::Disk::Config dcfg;
    dcfg.bandwidth_bps = disk_bps;
    dcfg.position_cost = sim::kMillisecond;
    for (std::size_t i = 0; i < n_data; ++i) {
      const net::NodeId node = static_cast<net::NodeId>(2 + n_meta + i);
      disks.push_back(std::make_unique<storage::Disk>(
          sim, common::strf("disk%u", node), dcfg));
      cfg.data_providers.push_back({node, disks.back().get(), 1});
    }
    cfg.default_chunk_size = kChunk;
    cfg.tree_depth = 10;
    cfg.replication = replication;
    store = std::make_unique<BlobStore>(sim, *fabric, cfg);
    client_node = static_cast<net::NodeId>(total - 1);
  }

  void run(Task<> t) {
    auto p = sim.spawn("test", std::move(t));
    sim.run();
    if (p->error()) std::rethrow_exception(p->error());
  }
};

ReductionConfig all_on() {
  ReductionConfig cfg;
  cfg.enabled = true;
  cfg.zero_suppression = true;
  cfg.dedup = true;
  cfg.compression = false;
  return cfg;
}

/// Commits `data` at `offset` through the reduction pipeline.
Task<VersionId> write_reduced(BlobClient& client, Reducer& red, BlobId blob,
                              std::uint64_t offset, Buffer data) {
  std::vector<BlobClient::ExtentSpec> specs;
  specs.push_back({offset, data.size()});
  const Buffer* owned = &data;
  BlobClient::ExtentReader reader =
      [owned, offset](std::uint64_t off,
                      std::uint64_t len) -> Task<Buffer> {
    co_return owned->slice(off - offset, len);
  };
  co_return co_await client.write_extents_via(blob, std::move(specs),
                                              &reader, &red);
}

TEST(ReduceTest, ZeroSuppressionRoundTrip) {
  TestCluster tc;
  Reducer red(*tc.store, all_on());
  Buffer data = Buffer::pattern(kChunk, 7);
  data.append(Buffer::zeros(2 * kChunk));
  data.append(Buffer::pattern(kChunk, 8));
  bool ok = false;
  tc.run([](TestCluster* tc, Reducer* red, const Buffer* data,
            bool* ok) -> Task<> {
    BlobClient client(*tc->store, tc->client_node);
    const BlobId blob = co_await client.create();
    const VersionId v =
        co_await write_reduced(client, *red, blob, 0, *data);
    const Buffer back = co_await client.read(blob, v, 0, data->size());
    *ok = (back == *data);
  }(&tc, &red, &data, &ok));
  EXPECT_TRUE(ok);
  EXPECT_EQ(red.stats().zero_chunks, 2u);
  EXPECT_EQ(red.stats().zero_bytes, 2 * kChunk);
  EXPECT_EQ(red.stats().raw_bytes, 4 * kChunk);
  EXPECT_EQ(red.stats().shipped_bytes, 2 * kChunk);
  // Only the two non-zero chunks consumed repository space.
  EXPECT_EQ(tc.store->total_stored_bytes(), 2 * kChunk);
}

TEST(ReduceTest, DedupAcrossRanksAndVersions) {
  TestCluster tc;
  Reducer red(*tc.store, all_on());
  const Buffer content = Buffer::pattern(4 * kChunk, 99);
  bool rank_b_ok = false;
  bool v2_ok = false;
  tc.run([](TestCluster* tc, Reducer* red, const Buffer* content,
            bool* rank_b_ok, bool* v2_ok) -> Task<> {
    // Two clients stand in for two ranks of one deployment sharing the
    // deployment-scoped reducer.
    BlobClient rank_a(*tc->store, tc->client_node);
    BlobClient rank_b(*tc->store, tc->client_node);
    const BlobId blob_a = co_await rank_a.create();
    const BlobId blob_b = co_await rank_b.create();

    const VersionId a1 =
        co_await write_reduced(rank_a, *red, blob_a, 0, *content);
    EXPECT_EQ(red->stats().dedup_hits, 0u);
    const std::uint64_t stored_after_a = tc->store->total_stored_bytes();

    // Rank B ships identical content: every chunk is a cross-rank hit.
    red->begin_epoch();
    const VersionId b1 =
        co_await write_reduced(rank_b, *red, blob_b, 0, *content);
    EXPECT_EQ(red->stats().dedup_hits, 4u);
    EXPECT_EQ(red->epoch_stats().dedup_hits, 4u);
    EXPECT_EQ(tc->store->total_stored_bytes(), stored_after_a);
    const Buffer back_b = co_await rank_b.read(blob_b, b1, 0, content->size());
    *rank_b_ok = (back_b == *content);

    // Rank A re-commits the same content as a new version: cross-version
    // hits, and v1 stays readable (shadowing).
    const VersionId a2 =
        co_await write_reduced(rank_a, *red, blob_a, 0, *content);
    EXPECT_EQ(red->stats().dedup_hits, 8u);
    EXPECT_EQ(tc->store->total_stored_bytes(), stored_after_a);
    const Buffer back_a1 = co_await rank_a.read(blob_a, a1, 0, content->size());
    const Buffer back_a2 = co_await rank_a.read(blob_a, a2, 0, content->size());
    *v2_ok = (back_a1 == *content) && (back_a2 == *content);
  }(&tc, &red, &content, &rank_b_ok, &v2_ok));
  EXPECT_TRUE(rank_b_ok);
  EXPECT_TRUE(v2_ok);
  EXPECT_EQ(red.stats().dedup_bytes, 8 * kChunk);
}

TEST(ReduceTest, IntraCommitDedup) {
  TestCluster tc;
  Reducer red(*tc.store, all_on());
  // One commit whose four chunks are identical.
  const Buffer one = Buffer::pattern(kChunk, 5);
  Buffer data = one;
  for (int i = 0; i < 3; ++i) data.append(one);
  bool ok = false;
  tc.run([](TestCluster* tc, Reducer* red, const Buffer* data,
            bool* ok) -> Task<> {
    BlobClient client(*tc->store, tc->client_node);
    const BlobId blob = co_await client.create();
    const VersionId v = co_await write_reduced(client, *red, blob, 0, *data);
    const Buffer back = co_await client.read(blob, v, 0, data->size());
    *ok = (back == *data);
  }(&tc, &red, &data, &ok));
  EXPECT_TRUE(ok);
  EXPECT_EQ(red.stats().dedup_hits, 3u);
  EXPECT_EQ(red.stats().shipped_bytes, kChunk);
  EXPECT_EQ(tc.store->total_stored_bytes(), kChunk);
}

TEST(ReduceTest, GcRefcountsSharedChunksAndInvalidatesIndex) {
  TestCluster tc;
  Reducer red(*tc.store, all_on());
  const Buffer shared = Buffer::pattern(2 * kChunk, 11);
  const Buffer other = Buffer::pattern(2 * kChunk, 12);
  bool b_after_gc_ok = false;
  bool rewrite_ok = false;
  BlobId blob_a = 0;
  BlobId blob_b = 0;
  tc.run([](TestCluster* tc, Reducer* red, const Buffer* shared,
            const Buffer* other, BlobId* pa, BlobId* pb,
            bool* b_after_gc_ok) -> Task<> {
    BlobClient a(*tc->store, tc->client_node);
    BlobClient b(*tc->store, tc->client_node);
    *pa = co_await a.create();
    *pb = co_await b.create();
    // A v1 stores the shared content; B's leaves dedup onto A's chunks.
    (void)co_await write_reduced(a, *red, *pa, 0, *shared);
    (void)co_await write_reduced(b, *red, *pb, 0, *shared);
    EXPECT_EQ(red->stats().dedup_hits, 2u);
    // A v2 replaces the content, obsoleting A v1.
    (void)co_await write_reduced(a, *red, *pa, 0, *other);

    // Drop A v1. Its chunks are still referenced by B v1, so the sweep
    // must keep them.
    GarbageCollector gc(*tc->store);
    const GarbageCollector::Result r = gc.collect(*pa, 2);
    EXPECT_EQ(r.chunks_deleted, 0u);
    EXPECT_EQ(r.chunks_kept_shared, 2u);
    const Buffer back = co_await b.read(*pb, 1, 0, shared->size());
    *b_after_gc_ok = (back == *shared);
  }(&tc, &red, &shared, &other, &blob_a, &blob_b, &b_after_gc_ok));
  EXPECT_TRUE(b_after_gc_ok);

  // Now obsolete B v1 too; the shared chunks become unreachable and must
  // really go — and the digest index must forget them.
  const std::uint64_t stored_before = tc.store->total_stored_bytes();
  tc.run([](TestCluster* tc, Reducer* red, const Buffer* shared,
            const Buffer* other, BlobId* pb, bool* rewrite_ok) -> Task<> {
    BlobClient b(*tc->store, tc->client_node);
    (void)co_await write_reduced(b, *red, *pb, 0, *other);
    GarbageCollector gc(*tc->store);
    const GarbageCollector::Result r = gc.collect(*pb, 2);
    EXPECT_EQ(r.chunks_deleted, 2u);
    EXPECT_EQ(r.reclaimed_bytes, 2 * kChunk);

    // Re-committing the shared content must MISS the index (its chunks are
    // gone) and store fresh copies that read back correctly.
    const std::uint64_t hits_before = red->stats().dedup_hits;
    BlobClient c(*tc->store, tc->client_node);
    const BlobId blob_c = co_await c.create();
    const VersionId vc =
        co_await write_reduced(c, *red, blob_c, 0, *shared);
    EXPECT_EQ(red->stats().dedup_hits, hits_before);
    const Buffer back = co_await c.read(blob_c, vc, 0, shared->size());
    *rewrite_ok = (back == *shared);
  }(&tc, &red, &shared, &other, &blob_b, &rewrite_ok));
  EXPECT_TRUE(rewrite_ok);
  // `other` committed for B, minus the reclaimed shared chunks, plus the
  // re-stored shared chunks.
  EXPECT_EQ(tc.store->total_stored_bytes(), stored_before);
}

TEST(ReduceTest, InFlightDedupRefPinsChunkAgainstGc) {
  // Slow provider disks widen the window between "dedup Ref taken" and
  // "version published": the unique chunk's store takes ~10 ms of
  // simulated time while the Refs are already pinned.
  TestCluster tc(4, 1, /*disk_bps=*/1e5);
  Reducer red(*tc.store, all_on());
  const Buffer shared = Buffer::pattern(2 * kChunk, 31);
  const Buffer other = Buffer::pattern(2 * kChunk, 32);
  Buffer mixed = shared;
  mixed.append(Buffer::pattern(kChunk, 33));  // unique chunk: must store
  bool read_ok = false;
  tc.run([](TestCluster* tc, Reducer* red, const Buffer* shared,
            const Buffer* other, const Buffer* mixed,
            bool* read_ok) -> Task<> {
    BlobClient a(*tc->store, tc->client_node);
    const BlobId blob_a = co_await a.create();
    (void)co_await write_reduced(a, *red, blob_a, 0, *shared);  // indexes
    (void)co_await write_reduced(a, *red, blob_a, 0, *other);   // obsoletes v1

    // Start a commit that dedups onto A v1's chunks, and run the GC while
    // that commit is still in flight (its version not yet published). The
    // pins must keep the chunks alive even though no published tree
    // references them outside the droppable A v1.
    BlobClient b(*tc->store, tc->client_node);
    const BlobId blob_b = co_await b.create();
    auto commit = tc->sim.spawn(
        "commit", [](BlobClient* b, Reducer* red, BlobId blob,
                     const Buffer* data) -> Task<> {
          (void)co_await write_reduced(*b, *red, blob, 0, *data);
        }(&b, red, blob_b, mixed));
    co_await tc->sim.delay(5 * sim::kMillisecond);  // mid-commit
    EXPECT_FALSE(commit->finished());
    GarbageCollector gc(*tc->store);
    const GarbageCollector::Result r = gc.collect(blob_a, 2);
    EXPECT_EQ(r.chunks_deleted, 0u);
    EXPECT_EQ(r.chunks_kept_shared, 2u);

    co_await commit->join();
    const Buffer back = co_await b.read(blob_b, 1, 0, mixed->size());
    *read_ok = (back == *mixed);

    // Once the commit published, its version's tree holds the references;
    // the pins are released and a later GC still keeps the chunks because
    // they are reachable from blob B.
    const GarbageCollector::Result r2 = gc.collect(blob_a, 2);
    EXPECT_EQ(r2.chunks_deleted, 0u);
  }(&tc, &red, &shared, &other, &mixed, &read_ok));
  EXPECT_TRUE(read_ok);
}

TEST(ReduceTest, PinsHeldThroughMetadataPublish) {
  // A commit made entirely of dedup Refs does all its payload work in the
  // reduce phase; after that, only the metadata co_awaits (put_nodes,
  // publish) remain. The Ref pins must span those suspensions too: a GC
  // running there sees the chunks in no published tree, so without the pins
  // it would reclaim them under the about-to-publish version. digest_bps
  // stretches the reduce phase so the GC lands deterministically in the
  // metadata window.
  TestCluster tc;
  ReductionConfig cfg = all_on();
  cfg.digest_bps = 1e6;  // ~1 ms per chunk digest
  Reducer red(*tc.store, cfg);
  const Buffer shared = Buffer::pattern(2 * kChunk, 41);
  const Buffer other = Buffer::pattern(2 * kChunk, 42);
  bool read_ok = false;
  tc.run([](TestCluster* tc, Reducer* red, const Buffer* shared,
            const Buffer* other, bool* read_ok) -> Task<> {
    BlobClient a(*tc->store, tc->client_node);
    const BlobId blob_a = co_await a.create();
    (void)co_await write_reduced(a, *red, blob_a, 0, *shared);  // indexes
    (void)co_await write_reduced(a, *red, blob_a, 0, *other);   // obsoletes v1

    BlobClient b(*tc->store, tc->client_node);
    const BlobId blob_b = co_await b.create();
    auto commit = tc->sim.spawn(
        "commit", [](BlobClient* b, Reducer* red, BlobId blob,
                     const Buffer* data) -> Task<> {
          (void)co_await write_reduced(*b, *red, blob, 0, *data);
        }(&b, red, blob_b, shared));
    // ~1.35 ms: reduce phase (resolve + digests) done, every chunk a Ref,
    // nothing stores; ~1.9 ms: publish completes. Land in between.
    co_await tc->sim.delay(1600 * sim::kMicrosecond);
    EXPECT_FALSE(commit->finished());
    GarbageCollector gc(*tc->store);
    const GarbageCollector::Result r = gc.collect(blob_a, 2);
    EXPECT_EQ(r.chunks_deleted, 0u);
    EXPECT_EQ(r.chunks_kept_shared, 2u);

    co_await commit->join();
    const Buffer back = co_await b.read(blob_b, 1, 0, shared->size());
    *read_ok = (back == *shared);
  }(&tc, &red, &shared, &other, &read_ok));
  EXPECT_TRUE(read_ok);
  EXPECT_EQ(red.stats().dedup_hits, 2u);
}

TEST(ReduceTest, FailedCommitWithdrawsIndexedDigests) {
  // Two large chunks land on the two providers; one provider fails while
  // both transfers are in flight. The surviving chunk stores, enters the
  // dedup index via committed(), and then the commit as a whole throws —
  // its version never publishes, so the orphan chunk must leave the index
  // again (a dedup Ref onto it could never be reclaimed by the GC).
  TestCluster tc(/*n_data=*/2, /*replication=*/1);
  Reducer red(*tc.store, all_on());
  constexpr std::uint64_t kBig = 1 << 20;
  const Buffer data = Buffer::pattern(2 * kBig, 51);
  bool threw = false;
  bool rewrite_ok = false;
  tc.run([](TestCluster* tc, Reducer* red, const Buffer* data, bool* threw,
            bool* rewrite_ok) -> Task<> {
    BlobClient a(*tc->store, tc->client_node);
    const BlobId blob_a = co_await a.create(kBig);
    auto commit = tc->sim.spawn(
        "commit", [](BlobClient* a, Reducer* red, BlobId blob,
                     const Buffer* data) -> Task<> {
          (void)co_await write_reduced(*a, *red, blob, 0, *data);
        }(&a, red, blob_a, data));
    // ~0.55 ms: placement done (both providers picked); ~2.7 ms: transfers
    // complete. Failing in between makes exactly one store throw while the
    // other runs to completion and indexes its chunk.
    co_await tc->sim.delay(sim::kMillisecond);
    tc->store->fail_node(tc->store->config().data_providers[1].node);
    co_await commit->join();
    *threw = (commit->error() != nullptr);
    EXPECT_EQ(red->index().size(), 0u);  // orphan withdrawn

    // The same content re-commits cleanly (placement avoids the dead
    // provider), misses the index, and reads back bit-identical.
    const std::uint64_t hits_before = red->stats().dedup_hits;
    BlobClient b(*tc->store, tc->client_node);
    const BlobId blob_b = co_await b.create(kBig);
    const VersionId v = co_await write_reduced(b, *red, blob_b, 0, *data);
    EXPECT_EQ(red->stats().dedup_hits, hits_before);
    const Buffer back = co_await b.read(blob_b, v, 0, data->size());
    *rewrite_ok = (back == *data);
  }(&tc, &red, &data, &threw, &rewrite_ok));
  EXPECT_TRUE(threw);
  EXPECT_TRUE(rewrite_ok);
}

TEST(ReduceTest, RleCompressionRoundTrip) {
  TestCluster tc;
  ReductionConfig cfg;
  cfg.enabled = true;
  cfg.zero_suppression = false;
  cfg.dedup = false;
  cfg.compression = true;
  Reducer red(*tc.store, cfg);
  // Chunk 1: highly compressible runs (but not all zeros). Chunk 2: random.
  std::vector<std::byte> runs(kChunk, std::byte{0xAB});
  for (std::size_t i = 0; i < runs.size(); i += 97) runs[i] = std::byte{0x12};
  Buffer data = Buffer::real(std::move(runs));
  data.append(Buffer::pattern(kChunk, 3));
  bool ok = false;
  tc.run([](TestCluster* tc, Reducer* red, const Buffer* data,
            bool* ok) -> Task<> {
    BlobClient client(*tc->store, tc->client_node);
    const BlobId blob = co_await client.create();
    const VersionId v = co_await write_reduced(client, *red, blob, 0, *data);
    const Buffer back = co_await client.read(blob, v, 0, data->size());
    *ok = (back == *data);
  }(&tc, &red, &data, &ok));
  EXPECT_TRUE(ok);
  // The run chunk compressed; the random chunk shipped raw (RLE would have
  // expanded it, so the pipeline kept the original).
  EXPECT_EQ(red.stats().compressed_chunks, 1u);
  EXPECT_GT(red.stats().compress_saved_bytes, 0u);
  EXPECT_LT(red.stats().shipped_bytes, 2 * kChunk);
  EXPECT_GE(red.stats().shipped_bytes, kChunk);
  EXPECT_EQ(tc.store->total_stored_bytes(), red.stats().shipped_bytes);
}

TEST(ReduceTest, PhantomRatioCompression) {
  TestCluster tc;
  ReductionConfig cfg;
  cfg.enabled = true;
  cfg.zero_suppression = true;
  cfg.dedup = true;  // must NOT dedup phantom payloads
  cfg.compression = true;
  cfg.phantom_compression_ratio = 0.5;
  Reducer red(*tc.store, cfg);
  const Buffer data = Buffer::phantom(4 * kChunk);
  std::uint64_t back_digest = 0;
  std::uint64_t back_size = 0;
  tc.run([](TestCluster* tc, Reducer* red, const Buffer* data,
            std::uint64_t* back_digest, std::uint64_t* back_size) -> Task<> {
    BlobClient client(*tc->store, tc->client_node);
    const BlobId blob = co_await client.create();
    const VersionId v = co_await write_reduced(client, *red, blob, 0, *data);
    const Buffer back = co_await client.read(blob, v, 0, data->size());
    *back_digest = back.digest();
    *back_size = back.size();
  }(&tc, &red, &data, &back_digest, &back_size));
  // Identical same-length phantom chunks must not pretend to dedup or be
  // zero-suppressed — their content is unknowable.
  EXPECT_EQ(red.stats().dedup_hits, 0u);
  EXPECT_EQ(red.stats().zero_chunks, 0u);
  EXPECT_EQ(red.stats().compressed_chunks, 4u);
  EXPECT_EQ(red.stats().shipped_bytes, 4 * (kChunk / 2));
  EXPECT_EQ(tc.store->total_stored_bytes(), 4 * (kChunk / 2));
  // Round trip preserves the logical payload identity.
  EXPECT_EQ(back_size, 4 * kChunk);
  EXPECT_EQ(back_digest, data.digest());
}

TEST(ReduceTest, DigestIndexKeepsFallbackLocations) {
  // Concurrent commits can store identical content twice; withdrawing one
  // copy (failed commit, GC reclaim) must keep the content indexed via the
  // other, and withdrawing both must empty the entry.
  ChunkDigestIndex idx;
  blob::ChunkLocation a;
  a.id = 10;
  a.size = 64;
  blob::ChunkLocation b = a;
  b.id = 11;
  idx.record(7, 64, a);
  idx.record(7, 64, b);
  EXPECT_EQ(idx.size(), 1u);
  ASSERT_NE(idx.lookup(7, 64), nullptr);
  EXPECT_EQ(idx.lookup(7, 64)->id, 10u);

  idx.forget_chunks({10});
  ASSERT_NE(idx.lookup(7, 64), nullptr);
  EXPECT_EQ(idx.lookup(7, 64)->id, 11u);

  idx.forget_chunks({11});
  EXPECT_EQ(idx.lookup(7, 64), nullptr);
  EXPECT_EQ(idx.size(), 0u);
}

TEST(ReduceTest, RleCodecProperty) {
  common::Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.next_u64() % 4096);
    std::vector<std::byte> in(n);
    // Mix runs and noise so both token kinds are exercised.
    std::size_t i = 0;
    while (i < n) {
      const bool run = (rng.next_u64() % 2) == 0;
      const std::size_t len =
          std::min(n - i, 1 + static_cast<std::size_t>(rng.next_u64() % 300));
      const std::byte v = static_cast<std::byte>(rng.next_u64() & 0xff);
      for (std::size_t k = 0; k < len; ++k) {
        in[i + k] = run ? v : static_cast<std::byte>(rng.next_u64() & 0xff);
      }
      i += len;
    }
    const std::vector<std::byte> enc = rle_encode(in);
    const std::vector<std::byte> dec = rle_decode(enc, in.size());
    ASSERT_EQ(dec, in);
  }
}

TEST(ReduceTest, ReplicatedDedupCountsOnce) {
  TestCluster tc(4, /*replication=*/2);
  Reducer red(*tc.store, all_on());
  const Buffer content = Buffer::pattern(2 * kChunk, 21);
  bool ok = false;
  tc.run([](TestCluster* tc, Reducer* red, const Buffer* content,
            bool* ok) -> Task<> {
    BlobClient a(*tc->store, tc->client_node);
    const BlobId blob_a = co_await a.create();
    (void)co_await a.write(blob_a, 0, *content);  // unreduced baseline
    const std::uint64_t unreduced = tc->store->total_stored_bytes();
    EXPECT_EQ(unreduced, 2 * (2 * kChunk));  // replication = 2

    BlobClient b(*tc->store, tc->client_node);
    const BlobId blob_b = co_await b.create();
    const VersionId v =
        co_await write_reduced(b, *red, blob_b, 0, *content);
    // The reducer has never seen this content (the unreduced path does not
    // index), so it stores once — at replication 2 — then dedups nothing.
    EXPECT_EQ(tc->store->total_stored_bytes(), 2 * unreduced);
    const VersionId v2 =
        co_await write_reduced(b, *red, blob_b, 0, *content);
    EXPECT_EQ(tc->store->total_stored_bytes(), 2 * unreduced);
    EXPECT_EQ(red->stats().dedup_hits, 2u);
    const Buffer r1 = co_await b.read(blob_b, v, 0, content->size());
    const Buffer r2 = co_await b.read(blob_b, v2, 0, content->size());
    *ok = (r1 == *content) && (r2 == *content);
  }(&tc, &red, &content, &ok));
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace blobcr::reduce
