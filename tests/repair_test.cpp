// RepairService tests: re-replication after provider loss restores the
// replication factor, readers find re-homed chunks through the provider
// manager's locate() fail-over, and a repaired repository survives a second
// failure that an unrepaired one would not.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/strutil.h"
#include "blob/client.h"
#include "blob/repair.h"
#include "blob/store.h"
#include "sim/sim.h"

namespace blobcr::blob {
namespace {

using common::Buffer;
using sim::Simulation;
using sim::Task;

/// A small in-memory cluster hosting one BlobStore (mirrors blob_test.cpp).
struct TestCluster {
  Simulation sim;
  std::unique_ptr<net::Fabric> fabric;
  std::vector<std::unique_ptr<storage::Disk>> disks;
  std::unique_ptr<BlobStore> store;
  net::NodeId client_node = 0;
  net::NodeId first_data_node = 0;

  explicit TestCluster(std::size_t n_data = 4, int replication = 2,
                       std::uint64_t chunk_size = 1024) {
    const std::size_t n_meta = 2;
    const std::size_t total = 2 + n_meta + n_data + 1;
    net::Fabric::Config fcfg;
    fcfg.node_count = total;
    fcfg.nic_bandwidth_bps = 1e9;
    fcfg.latency = 100 * sim::kMicrosecond;
    fabric = std::make_unique<net::Fabric>(sim, fcfg);

    BlobStore::Config cfg;
    cfg.version_manager_node = 0;
    cfg.provider_manager_node = 1;
    for (std::size_t i = 0; i < n_meta; ++i) {
      cfg.metadata_nodes.push_back(static_cast<net::NodeId>(2 + i));
    }
    storage::Disk::Config dcfg;
    dcfg.bandwidth_bps = 1e9;
    dcfg.position_cost = sim::kMillisecond;
    first_data_node = static_cast<net::NodeId>(2 + n_meta);
    for (std::size_t i = 0; i < n_data; ++i) {
      const net::NodeId node = static_cast<net::NodeId>(2 + n_meta + i);
      disks.push_back(std::make_unique<storage::Disk>(
          sim, common::strf("disk%u", node), dcfg));
      cfg.data_providers.push_back({node, disks.back().get(), 1});
    }
    cfg.default_chunk_size = chunk_size;
    cfg.tree_depth = 10;
    cfg.replication = replication;
    store = std::make_unique<BlobStore>(sim, *fabric, cfg);
    client_node = static_cast<net::NodeId>(total - 1);
  }

  void run(Task<> t) {
    auto p = sim.spawn("test", std::move(t));
    sim.run();
    if (p->error()) std::rethrow_exception(p->error());
  }

  /// The data node that holds the most chunk bytes (a worthwhile victim).
  net::NodeId busiest_provider() const {
    net::NodeId best = first_data_node;
    std::uint64_t most = 0;
    for (const auto& p : store->providers()) {
      if (p->stored_bytes() >= most) {
        most = p->stored_bytes();
        best = p->node();
      }
    }
    return best;
  }
};

TEST(RepairTest, RestoresReplicationFactorAfterNodeLoss) {
  TestCluster cluster(4, /*replication=*/2);
  cluster.run([](TestCluster* c) -> Task<> {
    BlobClient client(*c->store, c->client_node);
    const BlobId blob = co_await client.create();
    (void)co_await client.write(blob, 0, Buffer::pattern(64 * 1024, 5));

    RepairService repair(*c->store);
    EXPECT_EQ(repair.under_replicated(2), 0u);

    c->store->fail_node(c->busiest_provider());
    EXPECT_GT(repair.under_replicated(2), 0u);

    const RepairService::Report report = co_await repair.repair(2);
    EXPECT_GT(report.copies_made, 0u);
    EXPECT_EQ(report.lost, 0u);
    EXPECT_EQ(report.unrepairable, 0u);
    EXPECT_GT(report.bytes_copied, 0u);
    EXPECT_EQ(repair.under_replicated(2), 0u);
  }(&cluster));
}

TEST(RepairTest, RepairedDataSurvivesSecondFailure) {
  TestCluster cluster(5, /*replication=*/2);
  cluster.run([](TestCluster* c) -> Task<> {
    BlobClient client(*c->store, c->client_node);
    const BlobId blob = co_await client.create();
    const Buffer payload = Buffer::pattern(96 * 1024, 7);
    const VersionId v = co_await client.write(blob, 0, payload);

    // First failure + repair: back to 2 live replicas of everything.
    c->store->fail_node(c->busiest_provider());
    RepairService repair(*c->store);
    (void)co_await repair.repair(2);

    // Second failure: without the repair this could drop the last copy of
    // some chunk; with it, every chunk still has one live replica...
    c->store->fail_node(c->busiest_provider());
    const Buffer back = co_await client.read(blob, v, 0, payload.size());
    EXPECT_TRUE(back == payload);
  }(&cluster));
}

TEST(RepairTest, WithoutRepairSecondFailureLosesData) {
  // The control for the test above: same failures, no repair pass.
  TestCluster cluster(5, /*replication=*/2);
  bool lost = false;
  cluster.run([](TestCluster* c, bool* lost) -> Task<> {
    BlobClient client(*c->store, c->client_node);
    const BlobId blob = co_await client.create();
    const Buffer payload = Buffer::pattern(96 * 1024, 7);
    const VersionId v = co_await client.write(blob, 0, payload);

    c->store->fail_node(c->busiest_provider());
    c->store->fail_node(c->busiest_provider());
    try {
      (void)co_await client.read(blob, v, 0, payload.size());
    } catch (const BlobError&) {
      *lost = true;
    }
  }(&cluster, &lost));
  EXPECT_TRUE(lost);
}

TEST(RepairTest, ReadersFindRehomedChunksThroughLocate) {
  // With replication 1, the metadata lists exactly one home per chunk.
  // Raise the factor to 2 via repair, then kill one provider: every chunk
  // whose *listed* home died is only reachable through the provider
  // manager's locate() registry — the read proves that path works.
  TestCluster cluster(4, /*replication=*/1);
  cluster.run([](TestCluster* c) -> Task<> {
    BlobClient client(*c->store, c->client_node);
    const BlobId blob = co_await client.create();
    const Buffer payload = Buffer::pattern(32 * 1024, 11);
    const VersionId v = co_await client.write(blob, 0, payload);

    // Bump replication 1 -> 2 via repair (also a legitimate use: raising
    // the factor of existing data).
    RepairService repair(*c->store);
    const RepairService::Report report = co_await repair.repair(2);
    EXPECT_GT(report.copies_made, 0u);

    // Some chunks' single metadata-listed home is now dead; their repair
    // copies live elsewhere and are only findable via locate().
    c->store->fail_node(c->busiest_provider());
    const Buffer back = co_await client.read(blob, v, 0, payload.size());
    EXPECT_TRUE(back == payload);
  }(&cluster));
}

TEST(RepairTest, ReportsLostChunksWhenNoReplicaSurvives) {
  TestCluster cluster(3, /*replication=*/1);
  cluster.run([](TestCluster* c) -> Task<> {
    BlobClient client(*c->store, c->client_node);
    const BlobId blob = co_await client.create();
    (void)co_await client.write(blob, 0, Buffer::pattern(48 * 1024, 3));

    // Replication 1: losing any holder loses chunks for good.
    c->store->fail_node(c->busiest_provider());
    RepairService repair(*c->store);
    const RepairService::Report report = co_await repair.repair(1);
    EXPECT_GT(report.lost, 0u);
    EXPECT_EQ(report.copies_made, 0u);  // nothing left to copy from
    EXPECT_LE(report.lost, report.chunks_scanned);
  }(&cluster));
}

TEST(RepairTest, IdempotentWhenHealthy) {
  TestCluster cluster(4, /*replication=*/2);
  cluster.run([](TestCluster* c) -> Task<> {
    BlobClient client(*c->store, c->client_node);
    const BlobId blob = co_await client.create();
    (void)co_await client.write(blob, 0, Buffer::pattern(64 * 1024, 9));
    RepairService repair(*c->store);
    const RepairService::Report first = co_await repair.repair(2);
    EXPECT_EQ(first.copies_made, 0u);
    EXPECT_EQ(first.bytes_copied, 0u);
    const RepairService::Report second = co_await repair.repair(2);
    EXPECT_EQ(second.copies_made, 0u);
  }(&cluster));
}

TEST(RepairTest, UnrepairableWhenTooFewLiveProviders) {
  TestCluster cluster(3, /*replication=*/2);
  cluster.run([](TestCluster* c) -> Task<> {
    BlobClient client(*c->store, c->client_node);
    const BlobId blob = co_await client.create();
    (void)co_await client.write(blob, 0, Buffer::pattern(16 * 1024, 4));
    // Down to 2 live providers; target 3 cannot be met for any chunk.
    c->store->fail_node(c->busiest_provider());
    RepairService repair(*c->store);
    const RepairService::Report report = co_await repair.repair(3);
    EXPECT_GT(report.unrepairable, 0u);
  }(&cluster));
}

TEST(RepairTest, LostAccountingIsExactWhenEveryProviderDies) {
  TestCluster cluster(3, /*replication=*/2);
  cluster.run([](TestCluster* c) -> Task<> {
    BlobClient client(*c->store, c->client_node);
    const BlobId blob = co_await client.create();
    (void)co_await client.write(blob, 0, Buffer::pattern(24 * 1024, 8));

    for (const auto& p : c->store->providers()) {
      c->store->fail_node(p->node());
    }
    RepairService repair(*c->store);
    const RepairService::Report report = co_await repair.repair(2);
    // Zero live replicas anywhere: every scanned chunk is lost, none is
    // merely unrepairable (the lost path short-circuits), nothing copies.
    EXPECT_GT(report.chunks_scanned, 0u);
    EXPECT_EQ(report.lost, report.chunks_scanned);
    EXPECT_EQ(report.unrepairable, 0u);
    EXPECT_EQ(report.copies_made, 0u);
    EXPECT_EQ(report.bytes_copied, 0u);
    // under_replicated counts only chunks that still have a live copy.
    EXPECT_EQ(repair.under_replicated(2), 0u);
  }(&cluster));
}

TEST(RepairTest, UnrepairableAccountingWhenNoEligibleDestinationExists) {
  // Two providers at replication 2: every chunk lives on both, so after one
  // node dies the only live provider already holds everything — there is no
  // eligible destination, and the deficit is permanent until a node joins.
  TestCluster cluster(2, /*replication=*/2);
  cluster.run([](TestCluster* c) -> Task<> {
    BlobClient client(*c->store, c->client_node);
    const BlobId blob = co_await client.create();
    const Buffer payload = Buffer::pattern(24 * 1024, 13);
    const VersionId v = co_await client.write(blob, 0, payload);

    c->store->fail_node(c->busiest_provider());
    RepairService repair(*c->store);
    const RepairService::Report report = co_await repair.repair(2);
    EXPECT_GT(report.chunks_scanned, 0u);
    EXPECT_EQ(report.unrepairable, report.chunks_scanned);
    EXPECT_EQ(report.lost, 0u);
    EXPECT_EQ(report.copies_made, 0u);
    EXPECT_EQ(report.bytes_copied, 0u);
    // The deficit persists (a second pass accounts it identically)...
    const RepairService::Report again = co_await repair.repair(2);
    EXPECT_EQ(again.unrepairable, again.chunks_scanned);
    EXPECT_GT(repair.under_replicated(2), 0u);
    // ...but the data is still readable from the surviving replica.
    const Buffer back = co_await client.read(blob, v, 0, payload.size());
    EXPECT_TRUE(back == payload);
  }(&cluster));
}

TEST(RepairTest, PartialRepairCountsBothCopyAndUnrepairable) {
  // One chunk on 3 of 4 providers. Kill two holders: deficit 2, but only
  // one eligible destination (the non-holder) survives — the pass makes the
  // one copy it can AND records the chunk as unrepairable for the rest.
  TestCluster cluster(4, /*replication=*/3, /*chunk_size=*/1024);
  cluster.run([](TestCluster* c) -> Task<> {
    BlobClient client(*c->store, c->client_node);
    const BlobId blob = co_await client.create();
    (void)co_await client.write(blob, 0, Buffer::pattern(1024, 21));

    std::size_t failed = 0;
    for (const auto& p : c->store->providers()) {
      if (p->stored_bytes() > 0 && failed < 2) {
        c->store->fail_node(p->node());
        ++failed;
      }
    }
    EXPECT_EQ(failed, 2u);
    RepairService repair(*c->store);
    const RepairService::Report report = co_await repair.repair(3);
    EXPECT_EQ(report.chunks_scanned, 1u);
    EXPECT_EQ(report.copies_made, 1u);     // the one possible copy happened
    EXPECT_EQ(report.unrepairable, 1u);    // the same chunk stays short
    EXPECT_EQ(report.lost, 0u);
    EXPECT_GT(report.bytes_copied, 0u);
  }(&cluster));
}

TEST(RepairTest, InvalidTargetThrows) {
  TestCluster cluster(3, 1);
  cluster.run([](TestCluster* c) -> Task<> {
    RepairService repair(*c->store);
    bool threw = false;
    try {
      (void)co_await repair.repair(0);
    } catch (const BlobError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(&cluster));
}

}  // namespace
}  // namespace blobcr::blob
