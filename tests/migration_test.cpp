// VM migration via disk snapshots (§3.1.3 remark: incremental snapshots
// "are much easier to migrate"): an instance's virtual disk state moves to
// another compute node through the checkpoint repository, the guest OS
// reboots (or resumes, for full-VM snapshots), and the incremental
// checkpoint chain continues on the new node.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/blobcr.h"
#include "sim/sim.h"

namespace blobcr::core {
namespace {

using common::Buffer;
using sim::Task;

CloudConfig tiny_cfg(Backend backend) {
  CloudConfig cfg;
  cfg.compute_nodes = 6;
  cfg.metadata_nodes = 2;
  cfg.backend = backend;
  cfg.replication = 1;
  cfg.os = vm::GuestOsConfig::test_tiny();
  cfg.vm.os_ram_bytes = 20 * common::kMB;
  return cfg;
}

class MigrationTest : public ::testing::TestWithParam<Backend> {};

TEST_P(MigrationTest, MovesDiskStateToTargetNode) {
  Cloud cloud(tiny_cfg(GetParam()));
  struct Out {
    net::NodeId before = 0, after = 0;
    sim::Duration downtime = 0;
    bool synced_survives = false;
    bool unsynced_lost = false;
  } out;

  cloud.run([](Cloud* cl, Out* out) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 1);
    co_await dep.deploy_and_boot();
    out->before = dep.instance(0).node;

    guestfs::SimpleFs* fs = dep.vm(0).fs();
    co_await fs->write_file("/data/keep.bin", Buffer::pattern(200'000, 7));
    co_await fs->sync();
    // Written but never synced: page-cache data a snapshot cannot see.
    co_await fs->write_file("/data/drop.bin", Buffer::pattern(50'000, 8));

    const net::NodeId target = (out->before + 3) % 6;
    out->downtime = co_await dep.migrate_instance(0, target);
    out->after = dep.instance(0).node;

    guestfs::SimpleFs* fs2 = dep.vm(0).fs();
    const Buffer kept = co_await fs2->read_file("/data/keep.bin");
    out->synced_survives = (kept == Buffer::pattern(200'000, 7));
    out->unsynced_lost = !fs2->exists("/data/drop.bin");
  }(&cloud, &out));

  EXPECT_NE(out.after, out.before);
  EXPECT_GT(out.downtime, 0);
  EXPECT_TRUE(out.synced_survives);
  EXPECT_TRUE(out.unsynced_lost);
}

TEST_P(MigrationTest, CheckpointChainContinuesAfterMigration) {
  Cloud cloud(tiny_cfg(GetParam()));
  struct Out {
    std::uint64_t post_migration_snapshot_bytes = 0;
    bool restored = false;
  } out;

  cloud.run([](Cloud* cl, Out* out) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 1);
    co_await dep.deploy_and_boot();

    guestfs::SimpleFs* fs = dep.vm(0).fs();
    co_await fs->write_file("/data/a.bin", Buffer::pattern(300'000, 1));
    co_await fs->sync();
    (void)co_await dep.snapshot_instance(0);

    co_await dep.migrate_instance(0, (dep.instance(0).node + 2) % 6);

    // New writes on the new node, then another snapshot: the incremental
    // chain picks up where the pre-migration snapshot left off.
    guestfs::SimpleFs* fs2 = dep.vm(0).fs();
    co_await fs2->write_file("/data/b.bin", Buffer::pattern(100'000, 2));
    co_await fs2->sync();
    const InstanceSnapshot snap = co_await dep.snapshot_instance(0);
    out->post_migration_snapshot_bytes = snap.bytes;

    // Restart from that snapshot elsewhere and verify both generations.
    GlobalCheckpoint ckpt = dep.collect_last_snapshots();
    dep.destroy_all();
    co_await dep.restart_from(ckpt, 4);
    guestfs::SimpleFs* fs3 = dep.vm(0).fs();
    const Buffer a = co_await fs3->read_file("/data/a.bin");
    const Buffer b = co_await fs3->read_file("/data/b.bin");
    out->restored = (a == Buffer::pattern(300'000, 1)) &&
                    (b == Buffer::pattern(100'000, 2));
  }(&cloud, &out));

  EXPECT_TRUE(out.restored);
  EXPECT_GT(out.post_migration_snapshot_bytes, 0u);
  // Only BlobCR snapshots are incremental; the baselines re-ship their whole
  // container (qcow2-full additionally carries the guest RAM).
  if (GetParam() == Backend::BlobCR) {
    EXPECT_LT(out.post_migration_snapshot_bytes, 30 * common::kMB);
  }
}

TEST_P(MigrationTest, SameNodeMigrationIsAllowed) {
  Cloud cloud(tiny_cfg(GetParam()));
  bool ok = false;
  cloud.run([](Cloud* cl, bool* ok) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 1);
    co_await dep.deploy_and_boot();
    guestfs::SimpleFs* fs = dep.vm(0).fs();
    co_await fs->write_file("/data/x.bin", Buffer::pattern(64'000, 3));
    co_await fs->sync();
    const net::NodeId node = dep.instance(0).node;
    (void)co_await dep.migrate_instance(0, node);
    EXPECT_EQ(dep.instance(0).node, node);
    const Buffer x = co_await dep.vm(0).fs()->read_file("/data/x.bin");
    *ok = (x == Buffer::pattern(64'000, 3));
  }(&cloud, &ok));
  EXPECT_TRUE(ok);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, MigrationTest,
                         ::testing::Values(Backend::BlobCR,
                                           Backend::Qcow2Disk,
                                           Backend::Qcow2Full),
                         [](const auto& info) {
                           switch (info.param) {
                             case Backend::BlobCR:
                               return "BlobCR";
                             case Backend::Qcow2Disk:
                               return "Qcow2Disk";
                             case Backend::Qcow2Full:
                               return "Qcow2Full";
                           }
                           return "Unknown";
                         });

TEST(MigrationTest2, SequentialMigrationsHopAcrossNodes) {
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  struct Out {
    std::vector<net::NodeId> hops;
    bool ok = false;
  } out;
  cloud.run([](Cloud* cl, Out* out) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 1);
    co_await dep.deploy_and_boot();
    guestfs::SimpleFs* fs = dep.vm(0).fs();
    co_await fs->write_file("/data/x.bin", Buffer::pattern(128'000, 9));
    co_await fs->sync();
    for (int hop = 1; hop <= 3; ++hop) {
      const net::NodeId target = (dep.instance(0).node + 1) % 6;
      co_await dep.migrate_instance(0, target);
      out->hops.push_back(dep.instance(0).node);
    }
    const Buffer x = co_await dep.vm(0).fs()->read_file("/data/x.bin");
    out->ok = (x == Buffer::pattern(128'000, 9));
  }(&cloud, &out));
  EXPECT_EQ(out.hops.size(), 3u);
  EXPECT_TRUE(out.ok);
}

TEST(MigrationTest2, MigrationKeepsOtherInstancesUntouched) {
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  struct Out {
    bool moved_ok = false;
    bool bystander_ok = false;
    net::NodeId bystander_node_before = 0, bystander_node_after = 0;
  } out;
  cloud.run([](Cloud* cl, Out* out) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, 2);
    co_await dep.deploy_and_boot();
    for (std::size_t i = 0; i < 2; ++i) {
      guestfs::SimpleFs* fs = dep.vm(i).fs();
      co_await fs->write_file("/data/x.bin",
                              Buffer::pattern(100'000, 10 + i));
      co_await fs->sync();
    }
    out->bystander_node_before = dep.instance(1).node;
    co_await dep.migrate_instance(0, (dep.instance(0).node + 3) % 6);
    out->bystander_node_after = dep.instance(1).node;
    const Buffer a = co_await dep.vm(0).fs()->read_file("/data/x.bin");
    const Buffer b = co_await dep.vm(1).fs()->read_file("/data/x.bin");
    out->moved_ok = (a == Buffer::pattern(100'000, 10));
    out->bystander_ok = (b == Buffer::pattern(100'000, 11));
  }(&cloud, &out));
  EXPECT_TRUE(out.moved_ok);
  EXPECT_TRUE(out.bystander_ok);
  EXPECT_EQ(out.bystander_node_before, out.bystander_node_after);
}

}  // namespace
}  // namespace blobcr::core
