// Tests for SparseFile, including a property test against a flat reference.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "common/sparse.h"

namespace blobcr::common {
namespace {

TEST(SparseFileTest, EmptyReadsZeros) {
  SparseFile f;
  EXPECT_EQ(f.read(0, 10), Buffer::zeros(10));
  EXPECT_EQ(f.size(), 0u);
  EXPECT_EQ(f.allocated_bytes(), 0u);
}

TEST(SparseFileTest, WriteReadRoundTrip) {
  SparseFile f;
  f.write(100, Buffer::pattern(50, 1));
  EXPECT_EQ(f.read(100, 50), Buffer::pattern(50, 1));
  EXPECT_EQ(f.size(), 150u);
  EXPECT_EQ(f.allocated_bytes(), 50u);
}

TEST(SparseFileTest, HolesAroundExtentReadZeros) {
  SparseFile f;
  f.write(100, Buffer::pattern(50, 1));
  Buffer expect = Buffer::zeros(200);
  expect.overwrite(100, Buffer::pattern(50, 1));
  EXPECT_EQ(f.read(0, 200), expect);
}

TEST(SparseFileTest, OverlappingWriteReplaces) {
  SparseFile f;
  f.write(0, Buffer::pattern(100, 1));
  f.write(25, Buffer::pattern(50, 2));
  Buffer expect = Buffer::pattern(100, 1);
  expect.overwrite(25, Buffer::pattern(50, 2));
  EXPECT_EQ(f.read(0, 100), expect);
  EXPECT_EQ(f.allocated_bytes(), 100u);
}

TEST(SparseFileTest, WriteSplitsExistingExtent) {
  SparseFile f;
  f.write(0, Buffer::pattern(100, 1));
  f.write(40, Buffer::pattern(20, 2));
  EXPECT_EQ(f.extent_count(), 3u);
  EXPECT_EQ(f.allocated_bytes(), 100u);
}

TEST(SparseFileTest, EraseMakesHole) {
  SparseFile f;
  f.write(0, Buffer::pattern(100, 1));
  f.erase(30, 40);
  EXPECT_EQ(f.allocated_bytes(), 60u);
  EXPECT_EQ(f.read(30, 40), Buffer::zeros(40));
  EXPECT_EQ(f.read(0, 30), Buffer::pattern(100, 1).slice(0, 30));
}

TEST(SparseFileTest, PhantomContagionOnRead) {
  SparseFile f;
  f.write(0, Buffer::pattern(100, 1));
  f.write(200, Buffer::phantom(100));
  EXPECT_FALSE(f.read(0, 100).is_phantom());
  EXPECT_TRUE(f.read(150, 100).is_phantom());
  EXPECT_TRUE(f.read(0, 300).is_phantom());
  EXPECT_EQ(f.allocated_bytes(), 200u);
}

TEST(SparseFileTest, ClearResets) {
  SparseFile f;
  f.write(0, Buffer::pattern(100, 1));
  f.clear();
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.size(), 0u);
}

class SparsePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SparsePropertyTest, MatchesFlatReference) {
  Rng rng(GetParam());
  constexpr std::uint64_t kUniverse = 512;
  SparseFile f;
  std::vector<std::uint8_t> ref(kUniverse, 0);
  std::vector<bool> written(kUniverse, false);
  for (int step = 0; step < 200; ++step) {
    const std::uint64_t a = rng.uniform(kUniverse);
    const std::uint64_t n = 1 + rng.uniform(kUniverse - a);
    if (rng.chance(0.7)) {
      const Buffer data = Buffer::pattern(n, rng.next_u64());
      for (std::uint64_t i = 0; i < n; ++i) {
        ref[a + i] = std::to_integer<std::uint8_t>(data.bytes()[i]);
        written[a + i] = true;
      }
      f.write(a, data);
    } else {
      f.erase(a, n);
      for (std::uint64_t i = 0; i < n; ++i) {
        ref[a + i] = 0;
        written[a + i] = false;
      }
    }
    // Invariants: allocated bytes match; random range read matches.
    std::uint64_t alloc = 0;
    for (const bool w : written) alloc += w ? 1 : 0;
    ASSERT_EQ(f.allocated_bytes(), alloc);
    const std::uint64_t q = rng.uniform(kUniverse);
    const std::uint64_t qn = 1 + rng.uniform(kUniverse - q);
    const Buffer got = f.read(q, qn);
    ASSERT_EQ(got.size(), qn);
    for (std::uint64_t i = 0; i < qn; ++i) {
      ASSERT_EQ(std::to_integer<std::uint8_t>(got.bytes()[i]), ref[q + i])
          << "at " << (q + i);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparsePropertyTest,
                         ::testing::Values(7, 21, 42, 84, 168));

}  // namespace
}  // namespace blobcr::common
