// Fault-tolerance runtime tests: the Young/Daly interval analytics, the
// failure-schedule sampler, and the FtRunner's end-to-end behaviour — jobs
// complete under injected fail-stop failures by rolling back to the last
// complete global checkpoint, never losing more than one interval of work.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "ft/failure.h"
#include "ft/interval.h"
#include "ft/runner.h"

namespace blobcr::ft {
namespace {

using core::Backend;
using core::Cloud;
using core::CloudConfig;

// ---------------------------------------------------------------------------
// interval.h — closed-form analytics
// ---------------------------------------------------------------------------

TEST(IntervalTest, YoungMatchesClosedForm) {
  EXPECT_DOUBLE_EQ(young_interval(2.0, 3600.0), std::sqrt(2.0 * 2.0 * 3600.0));
  EXPECT_DOUBLE_EQ(young_interval(0.5, 100.0), std::sqrt(100.0));
}

TEST(IntervalTest, DalyBelowYoungByRoughlyCkptCost) {
  // For C << M, Daly's correction is tau_young - C + O(C^{3/2}).
  const double c = 5.0, m = 10'000.0;
  const double young = young_interval(c, m);
  const double daly = daly_interval(c, m);
  EXPECT_LT(daly, young);
  EXPECT_NEAR(daly, young - c, 0.5 * c);
}

TEST(IntervalTest, DalyDegradesToMtbfWhenCheckpointTooExpensive) {
  EXPECT_DOUBLE_EQ(daly_interval(200.0, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(daly_interval(2'000.0, 100.0), 100.0);
}

TEST(IntervalTest, OptimaMonotonicInCheckpointCost) {
  // A cheaper checkpoint justifies checkpointing more often.
  double prev = 0;
  for (const double c : {0.5, 1.0, 2.0, 5.0, 10.0}) {
    const double tau = daly_interval(c, 3600.0);
    EXPECT_GT(tau, prev);
    prev = tau;
  }
}

TEST(IntervalTest, SystemMtbfDividesByNodeCount) {
  EXPECT_DOUBLE_EQ(system_mtbf(86'400.0, 120), 720.0);
  EXPECT_DOUBLE_EQ(system_mtbf(100.0, 1), 100.0);
}

TEST(IntervalTest, InvalidArgumentsThrow) {
  EXPECT_THROW(young_interval(0, 100), std::invalid_argument);
  EXPECT_THROW(young_interval(1, 0), std::invalid_argument);
  EXPECT_THROW(daly_interval(-1, 100), std::invalid_argument);
  EXPECT_THROW(system_mtbf(100, 0), std::invalid_argument);
  EXPECT_THROW(system_mtbf(0, 4), std::invalid_argument);
  EXPECT_THROW(expected_segment_time(10, 1, 0), std::invalid_argument);
  EXPECT_THROW(expected_makespan(10, 0, 1, 1, 100), std::invalid_argument);
}

TEST(IntervalTest, SegmentTimeApproachesLengthForHugeMtbf) {
  // Failure-free limit: E -> length.
  EXPECT_NEAR(expected_segment_time(100.0, 30.0, 1e9), 100.0, 0.01);
}

TEST(IntervalTest, SegmentTimeInfiniteWhenSegmentDwarfsMtbf) {
  EXPECT_TRUE(std::isinf(expected_segment_time(1e6, 1.0, 1.0)));
}

TEST(IntervalTest, MakespanFailureFreeLimitIsWorkPlusCheckpoints) {
  // 1000 s of work at tau = 100 s costs 10 checkpoints of 2 s.
  const double t = expected_makespan(1000.0, 100.0, 2.0, 30.0, 1e9);
  EXPECT_NEAR(t, 1000.0 + 10 * 2.0, 0.5);
}

TEST(IntervalTest, MakespanHandlesRemainderSegment) {
  // 250 s of work at tau = 100 s: two full segments plus a 50 s remainder,
  // each paying one checkpoint.
  const double t = expected_makespan(250.0, 100.0, 2.0, 30.0, 1e9);
  EXPECT_NEAR(t, 250.0 + 3 * 2.0, 0.5);
}

TEST(IntervalTest, DalyIntervalSitsNearEmpiricalOptimum) {
  // The analytic optimum should beat doubling or halving the interval.
  const double work = 50'000.0, c = 10.0, r = 60.0, m = 2'000.0;
  const double tau = daly_interval(c, m);
  const double at_opt = expected_makespan(work, tau, c, r, m);
  EXPECT_LE(at_opt, expected_makespan(work, tau / 2, c, r, m) * 1.001);
  EXPECT_LE(at_opt, expected_makespan(work, tau * 2, c, r, m) * 1.001);
}

TEST(IntervalTest, EfficiencyWithinUnitIntervalAndImprovesWithMtbf) {
  const double work = 10'000.0, c = 5.0, r = 30.0;
  double prev = 0;
  for (const double m : {500.0, 2'000.0, 10'000.0, 1e8}) {
    const double tau = daly_interval(c, m);
    const double eff = expected_efficiency(work, tau, c, r, m);
    EXPECT_GT(eff, 0.0);
    EXPECT_LE(eff, 1.0);
    EXPECT_GT(eff, prev);
    prev = eff;
  }
}

TEST(IntervalTest, CheaperCheckpointsRaiseAchievableEfficiency) {
  // The BlobCR argument in one assertion: at each technology's own optimal
  // interval, the system with cheaper checkpoints wastes less of the machine.
  const double work = 50'000.0, r = 60.0, m = 1'000.0;
  const double eff_cheap =
      expected_efficiency(work, daly_interval(2.0, m), 2.0, r, m);
  const double eff_costly =
      expected_efficiency(work, daly_interval(20.0, m), 20.0, r, m);
  EXPECT_GT(eff_cheap, eff_costly);
}

// ---------------------------------------------------------------------------
// failure.h — schedule sampling
// ---------------------------------------------------------------------------

TEST(FailureScheduleTest, DeterministicForSeed) {
  const FailureLaw law = FailureLaw::exponential(50.0);
  const auto a = FailureSchedule::sample(law, 4, 3600 * sim::kSecond, 42);
  const auto b = FailureSchedule::sample(law, 4, 3600 * sim::kSecond, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].victim, b.events()[i].victim);
  }
}

TEST(FailureScheduleTest, DifferentSeedsDiffer) {
  const FailureLaw law = FailureLaw::exponential(50.0);
  const auto a = FailureSchedule::sample(law, 4, 3600 * sim::kSecond, 1);
  const auto b = FailureSchedule::sample(law, 4, 3600 * sim::kSecond, 2);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_NE(a.events().front().at, b.events().front().at);
}

TEST(FailureScheduleTest, EventsSortedAndWithinHorizon) {
  const sim::Duration horizon = 7200 * sim::kSecond;
  const auto s =
      FailureSchedule::sample(FailureLaw::exponential(30.0), 8, horizon, 7);
  ASSERT_FALSE(s.empty());
  sim::Time prev = 0;
  for (const FailureEvent& ev : s.events()) {
    EXPECT_GE(ev.at, prev);
    EXPECT_LT(ev.at, horizon);
    EXPECT_LT(ev.victim, 8u);
    prev = ev.at;
  }
}

TEST(FailureScheduleTest, ExponentialEmpiricalMeanNearMtbf) {
  const double mtbf = 40.0;
  const auto s = FailureSchedule::sample(FailureLaw::exponential(mtbf), 1,
                                         400'000 * sim::kSecond, 11);
  ASSERT_GT(s.size(), 1'000u);  // enough samples for a stable mean
  const double mean =
      sim::to_seconds(s.events().back().at) / static_cast<double>(s.size());
  EXPECT_NEAR(mean, mtbf, 0.1 * mtbf);
}

TEST(FailureScheduleTest, WeibullShapeOneBehavesLikeExponential) {
  const double mtbf = 40.0;
  const auto s = FailureSchedule::sample(FailureLaw::weibull(mtbf, 1.0), 1,
                                         400'000 * sim::kSecond, 13);
  ASSERT_GT(s.size(), 1'000u);
  const double mean =
      sim::to_seconds(s.events().back().at) / static_cast<double>(s.size());
  EXPECT_NEAR(mean, mtbf, 0.1 * mtbf);
}

TEST(FailureScheduleTest, InfantMortalityWeibullIsBurstier) {
  // Shape < 1 piles probability mass near zero: the coefficient of
  // variation of gaps exceeds the exponential's 1.
  auto gaps = [](const FailureSchedule& s) {
    std::vector<double> out;
    sim::Time prev = 0;
    for (const FailureEvent& ev : s.events()) {
      out.push_back(sim::to_seconds(ev.at - prev));
      prev = ev.at;
    }
    return out;
  };
  auto cv = [&](const FailureSchedule& s) {
    const auto g = gaps(s);
    double mean = 0;
    for (double x : g) mean += x;
    mean /= static_cast<double>(g.size());
    double var = 0;
    for (double x : g) var += (x - mean) * (x - mean);
    var /= static_cast<double>(g.size());
    return std::sqrt(var) / mean;
  };
  const sim::Duration horizon = 400'000 * sim::kSecond;
  const auto weib =
      FailureSchedule::sample(FailureLaw::weibull(40.0, 0.5), 1, horizon, 17);
  const auto expo =
      FailureSchedule::sample(FailureLaw::exponential(40.0), 1, horizon, 17);
  EXPECT_GT(cv(weib), cv(expo));
  EXPECT_GT(cv(weib), 1.3);
}

TEST(FailureScheduleTest, FixedScheduleSortsEvents) {
  const auto s = FailureSchedule::fixed({{30 * sim::kSecond, 2},
                                         {10 * sim::kSecond, 0},
                                         {20 * sim::kSecond, 1}});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.events()[0].victim, 0u);
  EXPECT_EQ(s.events()[1].victim, 1u);
  EXPECT_EQ(s.events()[2].victim, 2u);
}

TEST(FailureScheduleTest, ZeroMtbfThrows) {
  EXPECT_THROW(FailureSchedule::sample(FailureLaw::exponential(0), 1,
                                       100 * sim::kSecond, 1),
               std::invalid_argument);
}

TEST(FailureScheduleTest, InstancesGetIndependentStreams) {
  const auto s = FailureSchedule::sample(FailureLaw::exponential(25.0), 3,
                                         10'000 * sim::kSecond, 23);
  std::vector<std::size_t> counts(3, 0);
  for (const FailureEvent& ev : s.events()) ++counts[ev.victim];
  for (const std::size_t c : counts) EXPECT_GT(c, 0u);
}

// ---------------------------------------------------------------------------
// runner — end-to-end under a tiny cloud
// ---------------------------------------------------------------------------

CloudConfig tiny_cfg(Backend backend, int replication = 2) {
  CloudConfig cfg;
  cfg.compute_nodes = 16;  // room to shift to fresh nodes across restarts
  cfg.metadata_nodes = 2;
  cfg.backend = backend;
  cfg.replication = replication;
  cfg.os = vm::GuestOsConfig::test_tiny();
  cfg.vm.os_ram_bytes = 20 * common::kMB;
  return cfg;
}

FtJobConfig small_job() {
  FtJobConfig cfg;
  cfg.instances = 2;
  cfg.total_work = 90 * sim::kSecond;
  cfg.checkpoint_interval = 30 * sim::kSecond;
  cfg.step = 10 * sim::kSecond;
  cfg.state_bytes = 2 * common::kMB;
  cfg.real_data = true;
  return cfg;
}

TEST(FtRunnerTest, FailureFreeRunCompletes) {
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  const FtReport rep = run_ft_job(cloud, small_job());
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.verified);
  EXPECT_EQ(rep.failures, 0u);
  EXPECT_EQ(rep.restarts, 0u);
  // Initial checkpoint + one per 30 s interval over 90 s of work.
  EXPECT_EQ(rep.checkpoints, 4u);
  EXPECT_EQ(rep.useful_work, 90 * sim::kSecond);
  EXPECT_EQ(rep.epochs.size(), 4u);
  for (const EpochRecord& e : rep.epochs) EXPECT_TRUE(e.success);
}

TEST(FtRunnerTest, FailureFreeMakespanDecomposes) {
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  const FtReport rep = run_ft_job(cloud, small_job());
  ASSERT_TRUE(rep.completed);
  EXPECT_GE(rep.makespan, rep.useful_work + rep.checkpoint_overhead);
  // Slack: state refills and barrier synchronization only.
  const sim::Duration slack =
      rep.makespan - rep.useful_work - rep.checkpoint_overhead;
  EXPECT_LT(slack, 10 * sim::kSecond);
  EXPECT_GT(rep.efficiency(), 0.5);
  EXPECT_LE(rep.efficiency(), 1.0);
}

TEST(FtRunnerTest, ShrinkRescaleCompletesVerified) {
  // Spot reclaim: after two committed checkpoints the job gives back half
  // its instances and continues at the new width from the latest record.
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  FtJobConfig job = small_job();
  job.instances = 4;
  job.rescales = {{2, 2}};
  const FtReport rep = run_ft_job(cloud, job);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.verified);
  EXPECT_EQ(rep.rescales, 1u);
  EXPECT_GT(rep.rescale_overhead, 0);
  EXPECT_EQ(rep.failures, 0u);
  EXPECT_EQ(rep.useful_work, job.total_work);
}

TEST(FtRunnerTest, GrowRescaleSurvivesLaterFailure) {
  // Queue drain: grow 2 -> 4 mid-run, then lose one of the *new* ranks.
  // The rollback target is the forced post-rescale checkpoint, so the job
  // restarts at the grown width and still completes verified.
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  FtJobConfig job = small_job();
  job.instances = 2;
  job.rescales = {{2, 4}};
  job.failures = FailureSchedule::fixed({{70 * sim::kSecond, 3}});
  const FtReport rep = run_ft_job(cloud, job);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.verified);
  EXPECT_EQ(rep.rescales, 1u);
  EXPECT_EQ(rep.failures, 1u);
  EXPECT_EQ(rep.restarts, 1u);
  EXPECT_EQ(rep.useful_work, job.total_work);
}

TEST(FtRunnerTest, MidRunFailureRollsBackAndCompletes) {
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  FtJobConfig job = small_job();
  // Strike instance 1 while epoch 2 is computing (epoch 0 = initial ckpt).
  job.failures = FailureSchedule::fixed({{50 * sim::kSecond, 1}});
  const FtReport rep = run_ft_job(cloud, job);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.verified);
  EXPECT_EQ(rep.failures, 1u);
  EXPECT_EQ(rep.restarts, 1u);
  EXPECT_GT(rep.wasted_compute, 0);
  EXPECT_GT(rep.restart_overhead, 0);
  EXPECT_EQ(rep.useful_work, job.total_work);
  // Exactly one unsuccessful epoch in the record.
  std::size_t failed_epochs = 0;
  for (const EpochRecord& e : rep.epochs) failed_epochs += e.success ? 0 : 1;
  EXPECT_EQ(failed_epochs, 1u);
}

TEST(FtRunnerTest, LosesAtMostOneIntervalPerFailure) {
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  FtJobConfig job = small_job();
  job.failures = FailureSchedule::fixed({{50 * sim::kSecond, 0}});
  const FtReport rep = run_ft_job(cloud, job);
  ASSERT_TRUE(rep.completed);
  // Rollback cost is bounded by one interval plus one checkpoint attempt.
  EXPECT_LE(rep.wasted_compute,
            job.checkpoint_interval + 20 * sim::kSecond);
}

TEST(FtRunnerTest, FailureDuringInitialCheckpointRedeploysFromScratch) {
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  FtJobConfig job = small_job();
  // The initial checkpoint runs right after boot; strike immediately.
  job.failures = FailureSchedule::fixed({{1 * sim::kMillisecond, 0}});
  const FtReport rep = run_ft_job(cloud, job);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.verified);
  EXPECT_EQ(rep.restarts, 1u);
  EXPECT_EQ(rep.useful_work, job.total_work);
}

TEST(FtRunnerTest, RepeatedFailuresGiveUpAfterMaxRestarts) {
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  FtJobConfig job = small_job();
  job.max_restarts = 3;
  // One failure every 5 s of virtual time: no 30 s epoch can ever commit.
  std::vector<FailureEvent> events;
  for (int i = 1; i <= 200; ++i)
    events.push_back({i * 5 * sim::kSecond, static_cast<std::size_t>(i) % 2});
  job.failures = FailureSchedule::fixed(std::move(events));
  const FtReport rep = run_ft_job(cloud, job);
  EXPECT_FALSE(rep.completed);
  EXPECT_EQ(rep.restarts, job.max_restarts + 1);
  EXPECT_LT(rep.useful_work, job.total_work);
}

TEST(FtRunnerTest, ReplicatedRepositorySurvivesProviderLoss) {
  // The failed node also hosted a data provider; with replication = 2 the
  // restore still finds every chunk.
  Cloud cloud(tiny_cfg(Backend::BlobCR, /*replication=*/2));
  FtJobConfig job = small_job();
  job.failures = FailureSchedule::fixed({{50 * sim::kSecond, 0}});
  const FtReport rep = run_ft_job(cloud, job);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.verified);
}

TEST(FtRunnerTest, UnreplicatedRepositoryLosesCheckpointData) {
  // With replication = 1 the dead node's chunks are gone; the rollback
  // cannot reconstruct the checkpoint image and the job fails loudly.
  Cloud cloud(tiny_cfg(Backend::BlobCR, /*replication=*/1));
  FtJobConfig job = small_job();
  job.failures = FailureSchedule::fixed({{50 * sim::kSecond, 0}});
  EXPECT_THROW((void)run_ft_job(cloud, job), std::exception);
}

TEST(FtRunnerTest, RepairAfterRestartRecreatesLostReplicas) {
  Cloud cloud(tiny_cfg(Backend::BlobCR, /*replication=*/2));
  FtJobConfig job = small_job();
  job.repair_after_restart = true;
  job.failures = FailureSchedule::fixed({{50 * sim::kSecond, 0}});
  const FtReport rep = run_ft_job(cloud, job);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.verified);
  EXPECT_EQ(rep.restarts, 1u);
  // The dead node co-hosted a provider with real checkpoint chunks: the
  // repair pass must have re-created replicas for them.
  EXPECT_GT(rep.repair_copies, 0u);
  EXPECT_GT(rep.repair_bytes, 0u);
}

TEST(FtRunnerTest, RepairKeepsRepeatedFailuresSurvivable) {
  // Three failures spread across the run; with repair after each rollback,
  // every chunk keeps two live replicas and the job always completes.
  Cloud cloud(tiny_cfg(Backend::BlobCR, /*replication=*/2));
  FtJobConfig job = small_job();
  job.repair_after_restart = true;
  job.failures = FailureSchedule::fixed({{40 * sim::kSecond, 0},
                                         {90 * sim::kSecond, 1},
                                         {140 * sim::kSecond, 0}});
  const FtReport rep = run_ft_job(cloud, job);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.verified);
  EXPECT_GE(rep.restarts, 2u);
}

TEST(FtRunnerTest, QcowBaselineAlsoRecovers) {
  // The qcow2-disk baseline stores snapshots in PVFS (whose servers do not
  // die in the fail-stop model); recovery must work there too.
  Cloud cloud(tiny_cfg(Backend::Qcow2Disk));
  FtJobConfig job = small_job();
  job.failures = FailureSchedule::fixed({{50 * sim::kSecond, 1}});
  const FtReport rep = run_ft_job(cloud, job);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.verified);
  EXPECT_EQ(rep.restarts, 1u);
}

TEST(FtRunnerTest, BlcrModeRoundTripsUnderFailure) {
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  FtJobConfig job = small_job();
  job.mode = DumpMode::Blcr;
  job.failures = FailureSchedule::fixed({{50 * sim::kSecond, 0}});
  const FtReport rep = run_ft_job(cloud, job);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.verified);
  EXPECT_EQ(rep.restarts, 1u);
}

TEST(FtRunnerTest, DeterministicReplay) {
  FtJobConfig job = small_job();
  job.failures = FailureSchedule::sample(FailureLaw::exponential(120.0), 2,
                                         3600 * sim::kSecond, 99);
  Cloud a(tiny_cfg(Backend::BlobCR));
  Cloud b(tiny_cfg(Backend::BlobCR));
  const FtReport ra = run_ft_job(a, job);
  const FtReport rb = run_ft_job(b, job);
  EXPECT_EQ(ra.makespan, rb.makespan);
  EXPECT_EQ(ra.restarts, rb.restarts);
  EXPECT_EQ(ra.checkpoints, rb.checkpoints);
  ASSERT_EQ(ra.epochs.size(), rb.epochs.size());
  for (std::size_t i = 0; i < ra.epochs.size(); ++i) {
    EXPECT_EQ(ra.epochs[i].start, rb.epochs[i].start);
    EXPECT_EQ(ra.epochs[i].end, rb.epochs[i].end);
  }
}

TEST(FtRunnerTest, MoreFailuresMeanLongerMakespan) {
  FtJobConfig calm = small_job();
  FtJobConfig stormy = small_job();
  stormy.failures = FailureSchedule::fixed(
      {{50 * sim::kSecond, 0}, {150 * sim::kSecond, 1}});
  Cloud a(tiny_cfg(Backend::BlobCR));
  Cloud b(tiny_cfg(Backend::BlobCR));
  const FtReport calm_rep = run_ft_job(a, calm);
  const FtReport stormy_rep = run_ft_job(b, stormy);
  ASSERT_TRUE(calm_rep.completed);
  ASSERT_TRUE(stormy_rep.completed);
  EXPECT_GT(stormy_rep.makespan, calm_rep.makespan);
  EXPECT_LT(stormy_rep.efficiency(), calm_rep.efficiency());
}

TEST(FtRunnerTest, BlobcrCheckpointsCheaperThanQcowDiskOverManyEpochs) {
  // Successive qcow2-disk snapshots re-copy the whole growing container
  // (Fig 5a); BlobCR commits only deltas, so over several epochs its total
  // checkpoint overhead must come out lower.
  FtJobConfig job;
  job.instances = 2;
  job.total_work = 120 * sim::kSecond;
  job.checkpoint_interval = 20 * sim::kSecond;
  job.step = 10 * sim::kSecond;
  job.state_bytes = 24 * common::kMB;
  Cloud blob_cloud(tiny_cfg(Backend::BlobCR));
  Cloud qcow_cloud(tiny_cfg(Backend::Qcow2Disk));
  const FtReport blob_rep = run_ft_job(blob_cloud, job);
  const FtReport qcow_rep = run_ft_job(qcow_cloud, job);
  ASSERT_TRUE(blob_rep.completed);
  ASSERT_TRUE(qcow_rep.completed);
  EXPECT_LT(blob_rep.checkpoint_overhead, qcow_rep.checkpoint_overhead);
}

TEST(FtRunnerTest, GcBoundsRepositoryGrowth) {
  // Same job with and without per-checkpoint GC: GC reclaims obsoleted
  // snapshot versions, the job still completes, and the repository ends up
  // strictly smaller.
  FtJobConfig job = small_job();
  job.total_work = 120 * sim::kSecond;
  job.checkpoint_interval = 20 * sim::kSecond;  // 7 checkpoints incl. initial

  Cloud plain_cloud(tiny_cfg(Backend::BlobCR));
  const FtReport plain = run_ft_job(plain_cloud, job);
  const std::uint64_t plain_repo = plain_cloud.repository_bytes();

  job.gc_keep_last = 1;
  Cloud gc_cloud(tiny_cfg(Backend::BlobCR));
  const FtReport gced = run_ft_job(gc_cloud, job);
  const std::uint64_t gc_repo = gc_cloud.repository_bytes();

  ASSERT_TRUE(plain.completed);
  ASSERT_TRUE(gced.completed);
  EXPECT_TRUE(gced.verified);
  EXPECT_GT(gced.gc_reclaimed_bytes, 0u);
  EXPECT_LT(gc_repo, plain_repo);
}

TEST(FtRunnerTest, GcKeepsRollbackTargetUsable) {
  // GC down to the single latest version, then fail: the rollback must
  // still restore cleanly from what survived collection.
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  FtJobConfig job = small_job();
  job.gc_keep_last = 1;
  job.failures = FailureSchedule::fixed({{50 * sim::kSecond, 0}});
  const FtReport rep = run_ft_job(cloud, job);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.verified);
  EXPECT_EQ(rep.restarts, 1u);
  EXPECT_GT(rep.gc_reclaimed_bytes, 0u);
}

TEST(FtRunnerTest, InvalidConfigsThrow) {
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  FtJobConfig job = small_job();
  job.instances = 0;
  EXPECT_THROW((void)run_ft_job(cloud, job), std::invalid_argument);
  job = small_job();
  job.checkpoint_interval = 0;
  EXPECT_THROW((void)run_ft_job(cloud, job), std::invalid_argument);
  job = small_job();
  job.step = 0;
  EXPECT_THROW((void)run_ft_job(cloud, job), std::invalid_argument);
  job = small_job();
  job.total_work = 0;
  EXPECT_THROW((void)run_ft_job(cloud, job), std::invalid_argument);
}

TEST(FtRunnerTest, WeibullScheduleAlsoRecovers) {
  // Infant-mortality (shape < 1) failure law: bursty early failures.
  Cloud cloud(tiny_cfg(Backend::BlobCR));
  FtJobConfig job = small_job();
  job.repair_after_restart = true;
  job.failures = FailureSchedule::sample(FailureLaw::weibull(400.0, 0.6), 2,
                                         3600 * sim::kSecond, 5);
  const FtReport rep = run_ft_job(cloud, job);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.verified);
}

TEST(FtRunnerTest, DetectionLatencyCountsTowardRestartOverhead) {
  FtJobConfig job = small_job();
  job.failures = FailureSchedule::fixed({{50 * sim::kSecond, 0}});
  job.detect_latency = 1 * sim::kSecond;
  Cloud fast_cloud(tiny_cfg(Backend::BlobCR));
  const FtReport quick = run_ft_job(fast_cloud, job);
  job.detect_latency = 20 * sim::kSecond;
  Cloud slow_cloud(tiny_cfg(Backend::BlobCR));
  const FtReport slow = run_ft_job(slow_cloud, job);
  ASSERT_TRUE(quick.completed);
  ASSERT_TRUE(slow.completed);
  EXPECT_GE(slow.restart_overhead,
            quick.restart_overhead + 19 * sim::kSecond);
  EXPECT_GT(slow.makespan, quick.makespan);
}

TEST(FtRunnerTest, DumpModeNames) {
  EXPECT_STREQ(dump_mode_name(DumpMode::AppLevel), "app");
  EXPECT_STREQ(dump_mode_name(DumpMode::Blcr), "blcr");
}

}  // namespace
}  // namespace blobcr::ft
