// Tests for the BlobSeer-style store: versioning (shadowing), cloning,
// replication/fail-over, load balancing, GC, and a property test against a
// reference model.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/strutil.h"
#include "blob/client.h"
#include "blob/gc.h"
#include "blob/store.h"
#include "common/rng.h"
#include "sim/sim.h"

namespace blobcr::blob {
namespace {

using common::Buffer;
using common::Rng;
using sim::Simulation;
using sim::Task;

/// A small in-memory cluster hosting one BlobStore.
struct TestCluster {
  Simulation sim;
  std::unique_ptr<net::Fabric> fabric;
  std::vector<std::unique_ptr<storage::Disk>> disks;
  std::unique_ptr<BlobStore> store;
  net::NodeId client_node = 0;

  explicit TestCluster(std::size_t n_data = 4, int replication = 1,
                       std::uint64_t chunk_size = 1024,
                       double nic_bps = 1e9, double disk_bps = 1e9) {
    const std::size_t n_meta = 2;
    const std::size_t total = 2 + n_meta + n_data + 1;
    net::Fabric::Config fcfg;
    fcfg.node_count = total;
    fcfg.nic_bandwidth_bps = nic_bps;
    fcfg.latency = 100 * sim::kMicrosecond;
    fabric = std::make_unique<net::Fabric>(sim, fcfg);

    BlobStore::Config cfg;
    cfg.version_manager_node = 0;
    cfg.provider_manager_node = 1;
    for (std::size_t i = 0; i < n_meta; ++i) {
      cfg.metadata_nodes.push_back(static_cast<net::NodeId>(2 + i));
    }
    storage::Disk::Config dcfg;
    dcfg.bandwidth_bps = disk_bps;
    dcfg.position_cost = sim::kMillisecond;
    for (std::size_t i = 0; i < n_data; ++i) {
      const net::NodeId node = static_cast<net::NodeId>(2 + n_meta + i);
      disks.push_back(std::make_unique<storage::Disk>(
          sim, common::strf("disk%u", node), dcfg));
      cfg.data_providers.push_back({node, disks.back().get(), 1});
    }
    cfg.default_chunk_size = chunk_size;
    cfg.tree_depth = 10;
    cfg.replication = replication;
    store = std::make_unique<BlobStore>(sim, *fabric, cfg);
    client_node = static_cast<net::NodeId>(total - 1);
  }

  void run(Task<> t) {
    auto p = sim.spawn("test", std::move(t));
    sim.run();
    if (p->error()) std::rethrow_exception(p->error());
  }
};

Task<> write_read_roundtrip(TestCluster& tc, bool& ok) {
  BlobClient client(*tc.store, tc.client_node);
  const BlobId blob = co_await client.create();
  const Buffer data = Buffer::pattern(5000, 77);
  const VersionId v = co_await client.write(blob, 0, data);
  const Buffer back = co_await client.read(blob, v, 0, 5000);
  ok = (back == data);
}

TEST(BlobTest, WriteReadRoundTrip) {
  TestCluster tc;
  bool ok = false;
  tc.run(write_read_roundtrip(tc, ok));
  EXPECT_TRUE(ok);
}

Task<> versions_are_snapshots(TestCluster& tc, bool& v1_ok, bool& v2_ok) {
  BlobClient client(*tc.store, tc.client_node);
  const BlobId blob = co_await client.create();
  const Buffer gen1 = Buffer::pattern(4096, 1);
  const VersionId v1 = co_await client.write(blob, 0, gen1);
  // Overwrite the middle chunk only.
  Buffer patch = Buffer::pattern(1024, 2);
  const VersionId v2 = co_await client.write(blob, 1024, patch);
  const Buffer r1 = co_await client.read(blob, v1, 0, 4096);
  Buffer expect2 = gen1;
  expect2.overwrite(1024, patch);
  const Buffer r2 = co_await client.read(blob, v2, 0, 4096);
  v1_ok = (r1 == gen1);
  v2_ok = (r2 == expect2);
}

TEST(BlobTest, ShadowingKeepsOldVersionsIntact) {
  TestCluster tc;
  bool v1_ok = false;
  bool v2_ok = false;
  tc.run(versions_are_snapshots(tc, v1_ok, v2_ok));
  EXPECT_TRUE(v1_ok);
  EXPECT_TRUE(v2_ok);
}

Task<> shadowing_shares_chunks(TestCluster& tc, std::uint64_t& before,
                               std::uint64_t& after) {
  BlobClient client(*tc.store, tc.client_node);
  const BlobId blob = co_await client.create();
  co_await client.write(blob, 0, Buffer::pattern(16 * 1024, 3));
  before = tc.store->total_stored_bytes();
  co_await client.write(blob, 2048, Buffer::pattern(1024, 4));
  after = tc.store->total_stored_bytes();
}

TEST(BlobTest, IncrementalWriteStoresOnlyDelta) {
  TestCluster tc;
  std::uint64_t before = 0;
  std::uint64_t after = 0;
  tc.run(shadowing_shares_chunks(tc, before, after));
  EXPECT_EQ(before, 16u * 1024);
  EXPECT_EQ(after - before, 1024u);  // one chunk re-written
}

Task<> clone_diverges(TestCluster& tc, bool& clone_sees_base,
                      bool& clone_diverged, bool& base_unaffected) {
  BlobClient client(*tc.store, tc.client_node);
  const BlobId base = co_await client.create();
  const Buffer original = Buffer::pattern(4096, 5);
  const VersionId v1 = co_await client.write(base, 0, original);

  const BlobId fork = co_await client.clone(base, v1);
  const Buffer through_clone = co_await client.read(fork, 1, 0, 4096);
  clone_sees_base = (through_clone == original);

  const Buffer patch = Buffer::pattern(1024, 6);
  const VersionId v2 = co_await client.write(fork, 0, patch);
  Buffer expected = original;
  expected.overwrite(0, patch);
  const Buffer diverged = co_await client.read(fork, v2, 0, 4096);
  clone_diverged = (diverged == expected);

  const Buffer base_back = co_await client.read(base, v1, 0, 4096);
  base_unaffected = (base_back == original);
}

TEST(BlobTest, CloneSharesThenDiverges) {
  TestCluster tc;
  bool a = false;
  bool b = false;
  bool c = false;
  tc.run(clone_diverges(tc, a, b, c));
  EXPECT_TRUE(a);
  EXPECT_TRUE(b);
  EXPECT_TRUE(c);
}

Task<> clone_costs_nothing(TestCluster& tc, std::uint64_t& delta) {
  BlobClient client(*tc.store, tc.client_node);
  const BlobId base = co_await client.create();
  co_await client.write(base, 0, Buffer::pattern(8192, 7));
  const std::uint64_t before = tc.store->total_stored_bytes();
  co_await client.clone(base, 1);
  delta = tc.store->total_stored_bytes() - before;
}

TEST(BlobTest, CloneIsZeroCopy) {
  TestCluster tc;
  std::uint64_t delta = 1;
  tc.run(clone_costs_nothing(tc, delta));
  EXPECT_EQ(delta, 0u);
}

Task<> sparse_holes(TestCluster& tc, bool& ok) {
  BlobClient client(*tc.store, tc.client_node);
  const BlobId blob = co_await client.create();
  // Write only the 4th chunk; chunks 0..2 are holes.
  const VersionId v = co_await client.write(blob, 3 * 1024,
                                            Buffer::pattern(1024, 8));
  const Buffer front = co_await client.read(blob, v, 0, 2048);
  ok = (front == Buffer::zeros(2048));
}

TEST(BlobTest, HolesReadAsZeros) {
  TestCluster tc;
  bool ok = false;
  tc.run(sparse_holes(tc, ok));
  EXPECT_TRUE(ok);
}

Task<> unaligned_write(TestCluster& tc, bool& threw) {
  BlobClient client(*tc.store, tc.client_node);
  const BlobId blob = co_await client.create();
  try {
    co_await client.write(blob, 100, Buffer::pattern(1024, 9));
  } catch (const BlobError&) {
    threw = true;
  }
}

TEST(BlobTest, UnalignedWriteRejected) {
  TestCluster tc;
  bool threw = false;
  tc.run(unaligned_write(tc, threw));
  EXPECT_TRUE(threw);
}

Task<> multi_extent_commit(TestCluster& tc, VersionId& version, bool& ok) {
  BlobClient client(*tc.store, tc.client_node);
  const BlobId blob = co_await client.create();
  co_await client.write(blob, 0, Buffer::zeros(8192));
  std::vector<Extent> extents;
  extents.push_back({0, Buffer::pattern(1024, 10)});
  extents.push_back({4096, Buffer::pattern(2048, 11)});
  version = co_await client.write_extents(blob, std::move(extents));
  Buffer expect = Buffer::zeros(8192);
  expect.overwrite(0, Buffer::pattern(1024, 10));
  expect.overwrite(4096, Buffer::pattern(2048, 11));
  const Buffer back = co_await client.read(blob, version, 0, 8192);
  ok = (back == expect);
}

TEST(BlobTest, MultiExtentCommitIsOneVersion) {
  TestCluster tc;
  VersionId v = 0;
  bool ok = false;
  tc.run(multi_extent_commit(tc, v, ok));
  EXPECT_EQ(v, 2u);
  EXPECT_TRUE(ok);
}

Task<> version_accounting(TestCluster& tc, std::vector<VersionInfo>& out) {
  BlobClient client(*tc.store, tc.client_node);
  const BlobId blob = co_await client.create();
  co_await client.write(blob, 0, Buffer::pattern(8192, 12));
  co_await client.write(blob, 0, Buffer::pattern(1024, 13));
  const BlobMeta meta = co_await client.stat(blob);
  out = meta.versions;
}

TEST(BlobTest, PerVersionByteAccounting) {
  TestCluster tc;
  std::vector<VersionInfo> versions;
  tc.run(version_accounting(tc, versions));
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0].new_chunk_bytes, 8192u);
  EXPECT_EQ(versions[1].new_chunk_bytes, 1024u);
  EXPECT_GT(versions[0].new_meta_bytes, 0u);
  // The small second write shares most subtrees: far less new metadata.
  EXPECT_LT(versions[1].new_meta_bytes, versions[0].new_meta_bytes);
}

Task<> balanced_writes(TestCluster& tc) {
  BlobClient client(*tc.store, tc.client_node);
  const BlobId blob = co_await client.create();
  co_await client.write(blob, 0, Buffer::pattern(64 * 1024, 14));
}

TEST(BlobTest, PlacementBalancesProviders) {
  TestCluster tc(/*n_data=*/4);
  tc.run(balanced_writes(tc));
  // 64 chunks over 4 providers: each gets exactly 16 KiB.
  for (const auto& p : tc.store->providers()) {
    EXPECT_EQ(p->stored_bytes(), 16u * 1024);
  }
}

Task<> replicated_write(TestCluster& tc, BlobId& blob) {
  BlobClient client(*tc.store, tc.client_node);
  blob = co_await client.create();
  co_await client.write(blob, 0, Buffer::pattern(4096, 15));
}

Task<> read_all(TestCluster& tc, BlobId blob, Buffer& out) {
  BlobClient client(*tc.store, tc.client_node);
  out = co_await client.read(blob, 1, 0, 4096);
}

TEST(BlobTest, ReplicationSurvivesProviderFailure) {
  TestCluster tc(/*n_data=*/4, /*replication=*/2);
  BlobId blob = 0;
  tc.run(replicated_write(tc, blob));
  const std::uint64_t stored = tc.store->total_stored_bytes();
  EXPECT_EQ(stored, 2u * 4096);  // every chunk twice
  // Kill one provider; all data still readable via the other replica.
  tc.store->fail_node(tc.store->providers()[0]->node());
  Buffer back;
  tc.run(read_all(tc, blob, back));
  EXPECT_EQ(back, Buffer::pattern(4096, 15));
}

TEST(BlobTest, NoReplicationLosesDataOnFailure) {
  TestCluster tc(/*n_data=*/2, /*replication=*/1);
  BlobId blob = 0;
  tc.run(replicated_write(tc, blob));
  tc.store->fail_node(tc.store->providers()[0]->node());
  Buffer back;
  EXPECT_THROW(tc.run(read_all(tc, blob, back)), BlobError);
}

Task<> gc_scenario(TestCluster& tc, BlobId& base, BlobId& ckpt) {
  BlobClient client(*tc.store, tc.client_node);
  base = co_await client.create();
  co_await client.write(base, 0, Buffer::pattern(8192, 16));  // base v1
  ckpt = co_await client.clone(base, 1);
  // Three checkpoint versions, each rewriting chunk 0.
  for (int i = 0; i < 3; ++i) {
    co_await client.write(ckpt, 0, Buffer::pattern(1024, 20 + i));
  }
}

TEST(BlobTest, GcReclaimsOnlyUnsharedChunks) {
  TestCluster tc;
  BlobId base = 0;
  BlobId ckpt = 0;
  tc.run(gc_scenario(tc, base, ckpt));
  // ckpt versions: v1 (clone of base), v2, v3, v4 each with a 1 KiB rewrite.
  const std::uint64_t before = tc.store->total_stored_bytes();
  EXPECT_EQ(before, 8192u + 3 * 1024u);
  GarbageCollector gc(*tc.store);
  // Keep only the latest checkpoint version: v2 and v3's chunk-0 rewrites
  // are reclaimable; v1's chunks are shared with base and must survive.
  const auto result = gc.collect(ckpt, /*keep_from=*/4);
  EXPECT_EQ(result.reclaimed_bytes, 2u * 1024);
  EXPECT_EQ(tc.store->total_stored_bytes(), before - 2 * 1024);
  // Base must remain fully readable.
  Buffer back;
  tc.run(read_all(tc, base, back));
  EXPECT_EQ(back.slice(0, 4096), Buffer::pattern(8192, 16).slice(0, 4096));
}

TEST(BlobTest, GcTombstonesResolveToError) {
  TestCluster tc;
  BlobId base = 0;
  BlobId ckpt = 0;
  tc.run(gc_scenario(tc, base, ckpt));
  GarbageCollector gc(*tc.store);
  gc.collect(ckpt, 4);
  Buffer back;
  bool threw = false;
  auto reader = [](TestCluster& cluster, BlobId blob, bool& out) -> Task<> {
    BlobClient client(*cluster.store, cluster.client_node);
    try {
      (void)co_await client.read(blob, 2, 0, 1024);
    } catch (const BlobError&) {
      out = true;
    }
  };
  tc.run(reader(tc, ckpt, threw));
  EXPECT_TRUE(threw);
}

// Property test: a random sequence of chunk-aligned writes across several
// versions must match a per-version reference snapshot.
class BlobPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

Task<> random_version_history(TestCluster& tc, std::uint64_t seed, bool& ok) {
  constexpr std::uint64_t kChunk = 1024;
  constexpr std::uint64_t kChunks = 16;
  Rng rng(seed);
  BlobClient client(*tc.store, tc.client_node);
  const BlobId blob = co_await client.create();
  std::vector<std::vector<std::uint8_t>> snapshots;  // reference per version
  std::vector<std::uint64_t> logical_sizes;
  std::vector<std::uint8_t> model(kChunk * kChunks, 0);
  std::uint64_t logical_size = 0;

  for (int version = 0; version < 8; ++version) {
    const std::uint64_t chunk_lo = rng.uniform(kChunks);
    const std::uint64_t n_chunks = 1 + rng.uniform(kChunks - chunk_lo);
    const Buffer data =
        Buffer::pattern(n_chunks * kChunk, rng.next_u64());
    co_await client.write(blob, chunk_lo * kChunk, data);
    for (std::size_t i = 0; i < data.size(); ++i) {
      model[chunk_lo * kChunk + i] =
          std::to_integer<std::uint8_t>(data.bytes()[i]);
    }
    logical_size = std::max(logical_size, chunk_lo * kChunk + data.size());
    snapshots.push_back(model);
    logical_sizes.push_back(logical_size);
  }
  ok = true;
  for (std::size_t v = 1; v <= snapshots.size(); ++v) {
    // Reads clip at the version's logical size, like a sparse file.
    const Buffer back = co_await client.read(
        blob, static_cast<VersionId>(v), 0, kChunk * kChunks);
    const auto& ref = snapshots[v - 1];
    if (back.size() != logical_sizes[v - 1]) {
      ok = false;
      co_return;
    }
    for (std::size_t i = 0; i < back.size(); ++i) {
      if (std::to_integer<std::uint8_t>(back.bytes()[i]) != ref[i]) {
        ok = false;
        co_return;
      }
    }
  }
}

TEST_P(BlobPropertyTest, RandomHistoryMatchesReference) {
  TestCluster tc;
  bool ok = false;
  tc.run(random_version_history(tc, GetParam(), ok));
  EXPECT_TRUE(ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlobPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

Task<> phantom_roundtrip(TestCluster& tc, bool& ok) {
  BlobClient client(*tc.store, tc.client_node);
  const BlobId blob = co_await client.create();
  const VersionId v = co_await client.write(blob, 0, Buffer::phantom(4096));
  const Buffer back = co_await client.read(blob, v, 0, 4096);
  ok = back.is_phantom() && back.size() == 4096;
}

TEST(BlobTest, PhantomPayloadsFlowThrough) {
  TestCluster tc;
  bool ok = false;
  tc.run(phantom_roundtrip(tc, ok));
  EXPECT_TRUE(ok);
  EXPECT_EQ(tc.store->total_stored_bytes(), 4096u);
}

Task<> timed_reads(TestCluster& tc, sim::Duration& cold, sim::Duration& warm) {
  BlobClient writer(*tc.store, tc.client_node);
  const BlobId blob = co_await writer.create();
  co_await writer.write(blob, 0, Buffer::pattern(32 * 1024, 17));
  // Fresh client: cold metadata cache.
  BlobClient reader(*tc.store, tc.client_node);
  sim::Simulation& s = tc.sim;
  sim::Time t0 = s.now();
  co_await reader.prefetch_metadata(blob, 1, 0, 32 * 1024);
  (void)co_await reader.read(blob, 1, 0, 32 * 1024);
  cold = s.now() - t0;
  t0 = s.now();
  (void)co_await reader.read(blob, 1, 0, 32 * 1024);
  warm = s.now() - t0;
}

TEST(BlobTest, WarmMetadataCacheSpeedsReads) {
  TestCluster tc;
  sim::Duration cold = 0;
  sim::Duration warm = 0;
  tc.run(timed_reads(tc, cold, warm));
  EXPECT_LT(warm, cold);
}

}  // namespace
}  // namespace blobcr::blob
