// Tests for the PVFS-style parallel file system baseline.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "pfs/pvfs.h"
#include "pfs/pvfs_store.h"
#include "sim/sim.h"

namespace blobcr::pfs {
namespace {

using common::Buffer;
using sim::Simulation;
using sim::Task;
using sim::Time;
using sim::to_seconds;

struct TestPvfs {
  Simulation sim;
  std::unique_ptr<net::Fabric> fabric;
  std::vector<std::unique_ptr<storage::Disk>> disks;
  std::unique_ptr<PvfsCluster> cluster;
  net::NodeId client_node;

  explicit TestPvfs(std::size_t n_io = 4, double nic_bps = 1e9,
                    double disk_bps = 1e9,
                    std::uint64_t stripe = 1024) {
    const std::size_t total = 1 + n_io + 2;  // meta + io + 2 clients
    net::Fabric::Config fcfg;
    fcfg.node_count = total;
    fcfg.nic_bandwidth_bps = nic_bps;
    fcfg.latency = 100 * sim::kMicrosecond;
    fabric = std::make_unique<net::Fabric>(sim, fcfg);
    PvfsCluster::Config cfg;
    cfg.meta_node = 0;
    storage::Disk::Config dcfg;
    dcfg.bandwidth_bps = disk_bps;
    dcfg.position_cost = sim::kMillisecond;
    for (std::size_t i = 0; i < n_io; ++i) {
      disks.push_back(std::make_unique<storage::Disk>(
          sim, "io" + std::to_string(i), dcfg));
      cfg.io_servers.push_back(
          {static_cast<net::NodeId>(1 + i), disks.back().get()});
    }
    cfg.stripe_size = stripe;
    cluster = std::make_unique<PvfsCluster>(sim, *fabric, cfg);
    client_node = static_cast<net::NodeId>(total - 2);
  }

  void run(Task<> t) {
    auto p = sim.spawn("test", std::move(t));
    sim.run();
    if (p->error()) std::rethrow_exception(p->error());
  }
};

Task<> roundtrip(TestPvfs& tp, bool& ok) {
  PvfsClient client(*tp.cluster, tp.client_node);
  const FileId f = co_await client.create("/data/file1");
  const Buffer data = Buffer::pattern(10'000, 3);
  co_await client.write(f, 0, data);
  const Buffer back = co_await client.read(f, 0, 10'000);
  ok = (back == data);
}

TEST(PvfsTest, WriteReadRoundTrip) {
  TestPvfs tp;
  bool ok = false;
  tp.run(roundtrip(tp, ok));
  EXPECT_TRUE(ok);
}

Task<> offset_rw(TestPvfs& tp, bool& ok) {
  PvfsClient client(*tp.cluster, tp.client_node);
  const FileId f = co_await client.create("/f");
  co_await client.write(f, 0, Buffer::zeros(8192));
  co_await client.write(f, 3000, Buffer::pattern(100, 4));
  const Buffer back = co_await client.read(f, 2990, 120);
  Buffer expect = Buffer::zeros(120);
  expect.overwrite(10, Buffer::pattern(100, 4));
  ok = (back == expect);
}

TEST(PvfsTest, UnalignedOffsetsWork) {
  TestPvfs tp;
  bool ok = false;
  tp.run(offset_rw(tp, ok));
  EXPECT_TRUE(ok);
}

Task<> meta_ops(TestPvfs& tp, bool& missing_threw, bool& dup_threw,
                std::uint64_t& stat_size) {
  PvfsClient client(*tp.cluster, tp.client_node);
  try {
    (void)co_await client.open("/nope");
  } catch (const PvfsError&) {
    missing_threw = true;
  }
  (void)co_await client.create("/a");
  try {
    (void)co_await client.create("/a");
  } catch (const PvfsError&) {
    dup_threw = true;
  }
  const FileId f = co_await client.open("/a");
  co_await client.write(f, 0, Buffer::pattern(5000, 5));
  stat_size = co_await client.stat_size("/a");
}

TEST(PvfsTest, MetadataOperations) {
  TestPvfs tp;
  bool missing = false;
  bool dup = false;
  std::uint64_t size = 0;
  tp.run(meta_ops(tp, missing, dup, size));
  EXPECT_TRUE(missing);
  EXPECT_TRUE(dup);
  EXPECT_EQ(size, 5000u);
  EXPECT_GE(tp.cluster->meta_requests(), 4u);
}

Task<> remove_file(TestPvfs& tp, bool& gone) {
  PvfsClient client(*tp.cluster, tp.client_node);
  const FileId f = co_await client.create("/tmp");
  co_await client.write(f, 0, Buffer::pattern(4096, 6));
  co_await client.remove("/tmp");
  try {
    (void)co_await client.open("/tmp");
  } catch (const PvfsError&) {
    gone = true;
  }
}

TEST(PvfsTest, RemoveReclaimsSpace) {
  TestPvfs tp;
  bool gone = false;
  tp.run(remove_file(tp, gone));
  EXPECT_TRUE(gone);
  EXPECT_EQ(tp.cluster->total_stored_bytes(), 0u);
}

TEST(PvfsTest, StripingSpreadsAcrossServers) {
  TestPvfs tp(/*n_io=*/4, 1e9, 1e9, /*stripe=*/1024);
  bool ok = false;
  tp.run(roundtrip(tp, ok));
  ASSERT_TRUE(ok);
  // 10'000 bytes in 1 KiB stripes over 4 servers: every server stores some.
  for (const auto& d : tp.disks) {
    EXPECT_GT(d->bytes_written(), 0u);
  }
}

// Static placement: two files of the same size starting at different
// servers (id-derived), but the same file always lands identically.
Task<> write_two_files(TestPvfs& tp) {
  PvfsClient client(*tp.cluster, tp.client_node);
  const FileId a = co_await client.create("/a");
  const FileId b = co_await client.create("/b");
  co_await client.write(a, 0, Buffer::pattern(4096, 7));
  co_await client.write(b, 0, Buffer::pattern(4096, 8));
}

TEST(PvfsTest, PlacementIsStaticNotLoadAware) {
  TestPvfs tp(/*n_io=*/4, 1e9, 1e9, 1024);
  tp.run(write_two_files(tp));
  // With round-robin striping both 4 KiB files hit all 4 servers with 1 KiB
  // each; the point is determinism, not balance.
  std::vector<std::uint64_t> loads;
  for (const auto& d : tp.disks) loads.push_back(d->bytes_written());
  for (const std::uint64_t l : loads) EXPECT_EQ(l, 2048u);
}

// Timing: many files interleaving on the same servers pay positioning costs;
// the BlobSeer provider-log model in blob_test does not. Here we check that
// writing two files concurrently is slower than twice a lone file at disk
// level (seek charges), using a disk-bound configuration.
// NOTE: spawned coroutines must take value parameters (a reference to a
// temporary would dangle once the spawning statement ends).
Task<> concurrent_writer(TestPvfs& tp, std::string path,
                         std::vector<Time>& done) {
  PvfsClient client(*tp.cluster, tp.client_node);
  const FileId f = co_await client.create(path);
  co_await client.write(f, 0, Buffer::phantom(64 * 1024));
  done.push_back(tp.sim.now());
}

TEST(PvfsTest, InterleavedFilesPayPositioningCosts) {
  // Disk-bound: slow disks (1 MB/s), fast network.
  TestPvfs tp(/*n_io=*/2, /*nic=*/1e9, /*disk=*/1e6, /*stripe=*/1024);
  std::vector<Time> done;
  tp.run([](TestPvfs& cluster, std::vector<Time>& out) -> Task<> {
    auto p1 = cluster.sim.spawn(
        "w1", concurrent_writer(cluster, "/f1", out));
    auto p2 = cluster.sim.spawn(
        "w2", concurrent_writer(cluster, "/f2", out));
    co_await p1->join();
    co_await p2->join();
  }(tp, done));
  ASSERT_EQ(done.size(), 2u);
  std::uint64_t seeks = 0;
  for (const auto& d : tp.disks) seeks += d->seeks();
  // Interleaved stripes from two bstreams per server: far more than the 2
  // initial seeks a lone sequential stream would cost.
  EXPECT_GT(seeks, 16u);
}

Task<> store_adapter(TestPvfs& tp, bool& ok) {
  auto store = co_await PvfsFileStore::open(*tp.cluster, tp.client_node,
                                            "/img/base.raw", true);
  co_await store->write(0, Buffer::pattern(5000, 9));
  const Buffer back = co_await store->read(1000, 2000);
  ok = (back == Buffer::pattern(5000, 9).slice(1000, 2000)) &&
       store->size() == 5000;
}

TEST(PvfsTest, ByteStoreAdapter) {
  TestPvfs tp;
  bool ok = false;
  tp.run(store_adapter(tp, ok));
  EXPECT_TRUE(ok);
}

TEST(PvfsTest, PhantomPayloadRoundTrip) {
  TestPvfs tp;
  bool ok = false;
  tp.run([](TestPvfs& cluster, bool& result) -> Task<> {
    PvfsClient client(*cluster.cluster, cluster.client_node);
    const FileId f = co_await client.create("/ph");
    co_await client.write(f, 0, Buffer::phantom(100'000));
    const Buffer back = co_await client.read(f, 0, 100'000);
    result = back.is_phantom() && back.size() == 100'000;
  }(tp, ok));
  EXPECT_TRUE(ok);
  EXPECT_EQ(tp.cluster->total_stored_bytes(), 100'000u);
}

}  // namespace
}  // namespace blobcr::pfs
