// Tests for the seek-aware disk model and the append-log chunk store.
#include <gtest/gtest.h>

#include <vector>

#include "common/buffer.h"
#include "sim/sim.h"
#include "storage/chunk_store.h"
#include "storage/disk.h"

namespace blobcr::storage {
namespace {

using common::Buffer;
using sim::Simulation;
using sim::Task;
using sim::Time;
using sim::to_seconds;

Disk::Config test_cfg(double bw = 100.0, sim::Duration pos = sim::seconds(1)) {
  Disk::Config cfg;
  cfg.bandwidth_bps = bw;
  cfg.position_cost = pos;
  return cfg;
}

Task<> sequential_writes(Simulation& s, Disk& d, int n, std::uint64_t each,
                         std::vector<Time>& done) {
  for (int i = 0; i < n; ++i) {
    co_await d.append(/*stream=*/1, each);
  }
  done.push_back(s.now());
}

TEST(DiskTest, SequentialAppendPaysOneSeek) {
  Simulation s;
  Disk d(s, "d", test_cfg());
  std::vector<Time> done;
  s.spawn("w", sequential_writes(s, d, 10, 100, done));
  s.run();
  ASSERT_EQ(done.size(), 1u);
  // First op seeks (100 bytes worth), then 10*100 bytes stream: 11 s.
  EXPECT_NEAR(to_seconds(done[0]), 11.0, 1e-6);
  EXPECT_EQ(d.seeks(), 1u);
}

Task<> alternating_streams(Simulation& s, Disk& d, int n, std::uint64_t each,
                           std::vector<Time>& done) {
  for (int i = 0; i < n; ++i) {
    co_await d.append(/*stream=*/static_cast<std::uint64_t>(1 + (i % 2)),
                      each);
  }
  done.push_back(s.now());
}

TEST(DiskTest, InterleavedStreamsPaySeeks) {
  Simulation s;
  Disk d(s, "d", test_cfg());
  std::vector<Time> done;
  s.spawn("w", alternating_streams(s, d, 10, 100, done));
  s.run();
  ASSERT_EQ(done.size(), 1u);
  // Every op seeks: 10 * (100 seek bytes + 100 data bytes) = 20 s.
  EXPECT_NEAR(to_seconds(done[0]), 20.0, 1e-6);
  EXPECT_EQ(d.seeks(), 10u);
}

Task<> read_at(Simulation& s, Disk& d, std::uint64_t stream,
               std::uint64_t off, std::uint64_t bytes, std::vector<Time>& done) {
  co_await d.read(stream, off, bytes);
  done.push_back(s.now());
}

TEST(DiskTest, RandomReadsEachPaySeek) {
  Simulation s;
  Disk d(s, "d", test_cfg());
  std::vector<Time> done;
  s.spawn("r1", read_at(s, d, 1, 5000, 100, done));
  s.spawn("r2", read_at(s, d, 1, 0, 100, done));
  s.run();
  ASSERT_EQ(done.size(), 2u);
  // Two 100-byte reads, each charged a 100-byte seek, sharing 100 B/s.
  EXPECT_NEAR(to_seconds(done[0]), 4.0, 1e-3);
  EXPECT_NEAR(to_seconds(done[1]), 4.0, 1e-3);
  EXPECT_EQ(d.seeks(), 2u);
}

TEST(DiskTest, SequentialReadAfterWriteIsCheap) {
  Simulation s;
  Disk d(s, "d", test_cfg());
  std::vector<Time> done;
  s.spawn("rw", [](Simulation& sm, Disk& dk, std::vector<Time>& dn) -> Task<> {
    co_await dk.write(1, 0, 100);
    // Read continues where the write head stopped: sequential.
    co_await dk.read(1, 100, 100);
    dn.push_back(sm.now());
  }(s, d, done));
  s.run();
  ASSERT_EQ(done.size(), 1u);
  // seek + 100 + 100 bytes = 3 s.
  EXPECT_NEAR(to_seconds(done[0]), 3.0, 1e-6);
}

TEST(DiskTest, TracksReadWriteBytes) {
  Simulation s;
  Disk d(s, "d", test_cfg());
  std::vector<Time> done;
  s.spawn("w", sequential_writes(s, d, 3, 50, done));
  s.run();
  EXPECT_EQ(d.bytes_written(), 150u);
  EXPECT_EQ(d.bytes_read(), 0u);
}

Task<> store_chunks(Simulation& s, ChunkStore& cs, int n, std::size_t size,
                    std::vector<Time>& done) {
  for (int i = 0; i < n; ++i) {
    co_await cs.put(static_cast<std::uint64_t>(i),
                    Buffer::pattern(size, static_cast<std::uint64_t>(i)));
  }
  done.push_back(s.now());
}

TEST(ChunkStoreTest, PutGetRoundTrip) {
  Simulation s;
  Disk d(s, "d", test_cfg(1e9, 0));
  ChunkStore cs(d, /*stream=*/7);
  std::vector<Time> done;
  bool ok = false;
  s.spawn("w", [](Simulation&, ChunkStore& st, bool& result) -> Task<> {
    co_await st.put(1, Buffer::pattern(1000, 5));
    const Buffer b = co_await st.get(1);
    result = (b == Buffer::pattern(1000, 5));
  }(s, cs, ok));
  s.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(cs.stored_bytes(), 1000u);
  EXPECT_EQ(cs.chunk_count(), 1u);
}

TEST(ChunkStoreTest, AppendLogStaysSequential) {
  Simulation s;
  Disk d(s, "d", test_cfg());
  ChunkStore cs(d, /*stream=*/7);
  std::vector<Time> done;
  s.spawn("w", store_chunks(s, cs, 10, 100, done));
  s.run();
  // Chunk puts are appends to one log: a single initial seek.
  EXPECT_EQ(d.seeks(), 1u);
  EXPECT_NEAR(to_seconds(done[0]), 11.0, 1e-6);
}

TEST(ChunkStoreTest, EraseReclaimsSpace) {
  Simulation s;
  Disk d(s, "d", test_cfg(1e9, 0));
  ChunkStore cs(d, 7);
  std::vector<Time> done;
  s.spawn("w", store_chunks(s, cs, 4, 100, done));
  s.run();
  EXPECT_EQ(cs.stored_bytes(), 400u);
  EXPECT_TRUE(cs.erase(2));
  EXPECT_FALSE(cs.erase(2));
  EXPECT_EQ(cs.stored_bytes(), 300u);
  EXPECT_FALSE(cs.has(2));
  EXPECT_TRUE(cs.has(3));
}

TEST(ChunkStoreTest, MissingChunkThrows) {
  Simulation s;
  Disk d(s, "d", test_cfg(1e9, 0));
  ChunkStore cs(d, 7);
  bool threw = false;
  s.spawn("r", [](ChunkStore& st, bool& result) -> Task<> {
    try {
      (void)co_await st.get(99);
    } catch (const std::out_of_range&) {
      result = true;
    }
  }(cs, threw));
  s.run();
  EXPECT_TRUE(threw);
}

TEST(ChunkStoreTest, PhantomChunksAccountSizeOnly) {
  Simulation s;
  Disk d(s, "d", test_cfg(1e9, 0));
  ChunkStore cs(d, 7);
  bool ok = false;
  s.spawn("w", [](ChunkStore& st, bool& result) -> Task<> {
    co_await st.put(1, Buffer::phantom(4096));
    const Buffer b = co_await st.get(1);
    result = b.is_phantom() && b.size() == 4096;
  }(cs, ok));
  s.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(cs.stored_bytes(), 4096u);
}

}  // namespace
}  // namespace blobcr::storage
