// Tests for the sharded metadata plane: content-hash routing in the digest
// index (cross-tenant dedup without cross-shard traffic), withdrawal
// confinement on failed commits, the epoch-based concurrent GC against a
// commit parked mid-flight holding dedup pins, and the blob/name-hash
// sharded version manager across shard counts.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "blob/client.h"
#include "blob/gc.h"
#include "blob/store.h"
#include "common/strutil.h"
#include "reduce/digest_index.h"
#include "reduce/reducer.h"
#include "reduce/reduction.h"
#include "sim/sim.h"

namespace blobcr::reduce {
namespace {

using blob::BlobClient;
using blob::BlobId;
using blob::BlobStore;
using blob::VersionId;
using common::Buffer;
using sim::Simulation;
using sim::Task;

constexpr std::uint64_t kChunk = 1024;

/// A small in-memory cluster hosting one BlobStore (mirrors reduce_test),
/// with a configurable version-manager shard count.
struct TestCluster {
  Simulation sim;
  std::unique_ptr<net::Fabric> fabric;
  std::vector<std::unique_ptr<storage::Disk>> disks;
  std::unique_ptr<BlobStore> store;
  net::NodeId client_node = 0;

  explicit TestCluster(std::size_t n_data = 4, std::size_t version_shards = 1) {
    const std::size_t n_meta = 2;
    const std::size_t total = 2 + n_meta + n_data + 1;
    net::Fabric::Config fcfg;
    fcfg.node_count = total;
    fcfg.nic_bandwidth_bps = 1e9;
    fcfg.latency = 100 * sim::kMicrosecond;
    fabric = std::make_unique<net::Fabric>(sim, fcfg);

    BlobStore::Config cfg;
    cfg.version_manager_node = 0;
    cfg.provider_manager_node = 1;
    for (std::size_t i = 0; i < n_meta; ++i) {
      cfg.metadata_nodes.push_back(static_cast<net::NodeId>(2 + i));
    }
    storage::Disk::Config dcfg;
    dcfg.bandwidth_bps = 1e9;
    dcfg.position_cost = sim::kMillisecond;
    for (std::size_t i = 0; i < n_data; ++i) {
      const net::NodeId node = static_cast<net::NodeId>(2 + n_meta + i);
      disks.push_back(std::make_unique<storage::Disk>(
          sim, common::strf("disk%u", node), dcfg));
      cfg.data_providers.push_back({node, disks.back().get(), 1});
    }
    cfg.default_chunk_size = kChunk;
    cfg.tree_depth = 10;
    cfg.replication = 1;
    cfg.version_shards = version_shards;
    store = std::make_unique<BlobStore>(sim, *fabric, cfg);
    client_node = static_cast<net::NodeId>(total - 1);
  }

  void run(Task<> t) {
    auto p = sim.spawn("test", std::move(t));
    sim.run();
    if (p->error()) std::rethrow_exception(p->error());
  }
};

ReductionConfig all_on(std::size_t index_shards = 16) {
  ReductionConfig cfg;
  cfg.enabled = true;
  cfg.zero_suppression = true;
  cfg.dedup = true;
  cfg.compression = false;
  cfg.index_shards = index_shards;
  return cfg;
}

/// Commits `data` at `offset` through the reduction pipeline.
Task<VersionId> write_reduced(BlobClient& client, Reducer& red, BlobId blob,
                              std::uint64_t offset, const Buffer& data) {
  std::vector<BlobClient::ExtentSpec> specs;
  specs.push_back({offset, data.size()});
  BlobClient::ExtentReader reader =
      [&data, offset](std::uint64_t off,
                      std::uint64_t len) -> Task<Buffer> {
    co_return data.slice(off - offset, len);
  };
  co_return co_await client.write_extents_via(blob, std::move(specs),
                                              &reader, &red);
}

std::vector<ChunkDigestIndex::ShardStats> snapshot(
    const ChunkDigestIndex& idx) {
  std::vector<ChunkDigestIndex::ShardStats> out;
  for (std::size_t s = 0; s < idx.shard_count(); ++s) {
    out.push_back(idx.shard_stats(s));
  }
  return out;
}

// --- content-hash routing ----------------------------------------------------

// Shard routing is a pure function of (digest, raw_size): the same content
// committed by two different tenants through two different reducers resolves
// in exactly the shards that recorded it — a cross-tenant dedup hit needs no
// cross-shard traffic, and untouched shards stay byte-identical.
TEST(ShardTest, SameContentLandsInOneShardRegardlessOfTenant) {
  TestCluster tc;
  ChunkDigestIndex idx(16);
  const net::TenantId ta = tc.store->tenants().register_tenant("job-a");
  const net::TenantId tb = tc.store->tenants().register_tenant("job-b");
  Reducer red_a(*tc.store, all_on(), &idx, ta);
  Reducer red_b(*tc.store, all_on(), &idx, tb);
  const Buffer content = Buffer::pattern(4 * kChunk, 99);

  std::vector<ChunkDigestIndex::ShardStats> after_a;
  std::uint64_t stored_after_a = 0;
  std::uint64_t stored_after_b = 0;
  bool b_ok = false;
  tc.run([](TestCluster* tc, ChunkDigestIndex* idx, Reducer* ra, Reducer* rb,
            net::TenantId ta, net::TenantId tb, const Buffer* content,
            std::vector<ChunkDigestIndex::ShardStats>* after_a,
            std::uint64_t* stored_after_a, std::uint64_t* stored_after_b,
            bool* b_ok) -> Task<> {
    BlobClient a(*tc->store, tc->client_node);
    a.set_tenant(ta);
    BlobClient b(*tc->store, tc->client_node);
    b.set_tenant(tb);
    const BlobId blob_a = co_await a.create();
    const BlobId blob_b = co_await b.create();

    co_await write_reduced(a, *ra, blob_a, 0, *content);
    *after_a = snapshot(*idx);
    *stored_after_a = tc->store->total_stored_bytes();

    const VersionId vb = co_await write_reduced(b, *rb, blob_b, 0, *content);
    *stored_after_b = tc->store->total_stored_bytes();
    const Buffer back = co_await b.read(blob_b, vb, 0, content->size());
    *b_ok = (back == *content);
  }(&tc, &idx, &red_a, &red_b, ta, tb, &content, &after_a, &stored_after_a,
    &stored_after_b, &b_ok));

  // Cross-tenant dedup through the sharded index: nothing stored twice,
  // B restores bit-exactly from A's chunks.
  EXPECT_EQ(stored_after_b, stored_after_a);
  EXPECT_TRUE(b_ok);

  const auto after_b = snapshot(idx);
  std::uint64_t hits = 0;
  for (std::size_t s = 0; s < idx.shard_count(); ++s) {
    const bool owner = after_a[s].records > 0;
    const std::uint64_t hit_delta = after_b[s].hits - after_a[s].hits;
    hits += hit_delta;
    if (owner) {
      // B's lookups for this content went to the shard that recorded it.
      EXPECT_EQ(hit_delta, after_b[s].lookups - after_a[s].lookups)
          << "shard " << s << ": some lookup missed on indexed content";
    } else {
      // Tenant identity must not route identical content elsewhere.
      EXPECT_EQ(hit_delta, 0u) << "shard " << s;
      EXPECT_EQ(after_b[s].records, after_a[s].records) << "shard " << s;
      EXPECT_EQ(after_b[s].lookups, after_a[s].lookups) << "shard " << s;
    }
    // No new content keys anywhere: B's commit recorded nothing.
    EXPECT_EQ(after_b[s].records, after_a[s].records) << "shard " << s;
  }
  EXPECT_EQ(hits, 4u);  // every chunk of B's commit was a cross-tenant hit
}

// --- withdrawal confinement --------------------------------------------------

// A failed commit withdraws exactly the entries it recorded, from exactly
// the shards that own its content: every shard ends with records == forgets
// balanced against the pre-commit state, entry counts return to the
// pre-commit level, and previously indexed content keeps serving hits.
TEST(ShardTest, FailedCommitWithdrawalConfinedToOwningShard) {
  TestCluster tc;
  ChunkDigestIndex idx(16);
  const net::TenantId ta = tc.store->tenants().register_tenant("job-a");
  const net::TenantId tb = tc.store->tenants().register_tenant("job-b");
  Reducer red_a(*tc.store, all_on(), &idx, ta);
  Reducer red_b(*tc.store, all_on(), &idx, tb);
  const Buffer content_a = Buffer::pattern(2 * kChunk, 11);
  const Buffer content_b = Buffer::pattern(2 * kChunk, 22);

  std::vector<ChunkDigestIndex::ShardStats> before_b;
  std::vector<std::size_t> sizes_before_b;
  std::size_t index_size_before_b = 0;
  bool killed = false;
  std::uint64_t rehit = 0;
  bool a_ok = false;

  tc.run([](TestCluster* tc, ChunkDigestIndex* idx, Reducer* ra, Reducer* rb,
            net::TenantId ta, net::TenantId tb, const Buffer* content_a,
            const Buffer* content_b,
            std::vector<ChunkDigestIndex::ShardStats>* before_b,
            std::vector<std::size_t>* sizes_before_b,
            std::size_t* index_size_before_b, bool* killed,
            std::uint64_t* rehit, bool* a_ok) -> Task<> {
    BlobClient a(*tc->store, tc->client_node);
    a.set_tenant(ta);
    const BlobId blob_a = co_await a.create();
    const VersionId va =
        co_await write_reduced(a, *ra, blob_a, 0, *content_a);

    *before_b = snapshot(*idx);
    for (std::size_t s = 0; s < idx->shard_count(); ++s) {
      sizes_before_b->push_back(idx->shard_size(s));
    }
    *index_size_before_b = idx->size();

    // Tenant B commits fresh content and is fail-stopped at PrePublish:
    // all chunks are stored and indexed, the version is not yet published,
    // so the commit guard must withdraw B's entries on unwind.
    bool parked = false;
    sim::Event never(tc->sim);  // parking spot: set only by the kill
    blob::CommitProbe probe =
        [&parked, &never](blob::CommitStage s) -> Task<> {
      if (s == blob::CommitStage::PrePublish) {
        parked = true;
        co_await never.wait();  // killed while suspended here
      }
    };
    BlobClient::ExtentReader reader =
        [content_b](std::uint64_t off, std::uint64_t len) -> Task<Buffer> {
      co_return content_b->slice(off, len);
    };
    blob::CommitOptions opts;
    opts.reducer = rb;
    opts.probe = &probe;
    auto victim = tc->sim.spawn(
        "victim",
        [](TestCluster* tc, net::TenantId tb, const Buffer* content_b,
           BlobClient::ExtentReader* reader,
           blob::CommitOptions* opts) -> Task<> {
          BlobClient b(*tc->store, tc->client_node);
          b.set_tenant(tb);
          const BlobId blob_b = co_await b.create();
          std::vector<BlobClient::ExtentSpec> specs;
          specs.push_back({0, content_b->size()});
          co_await b.write_extents_via(blob_b, std::move(specs), reader,
                                       *opts);
        }(tc, tb, content_b, &reader, &opts));
    while (!parked) co_await tc->sim.delay(100 * sim::kMicrosecond);
    victim->kill();
    *killed = true;
    co_await tc->sim.delay(sim::kMillisecond);  // let the unwind settle

    // A's content must still be indexed: a third commit of the same bytes
    // is all hits, shipping nothing new.
    const std::uint64_t hits0 = rb->stats().dedup_hits;
    BlobClient c(*tc->store, tc->client_node);
    c.set_tenant(tb);
    const BlobId blob_c = co_await c.create();
    co_await write_reduced(c, *rb, blob_c, 0, *content_a);
    *rehit = rb->stats().dedup_hits - hits0;

    const Buffer back = co_await a.read(blob_a, va, 0, content_a->size());
    *a_ok = (back == *content_a);
  }(&tc, &idx, &red_a, &red_b, ta, tb, &content_a, &content_b, &before_b,
    &sizes_before_b, &index_size_before_b, &killed, &rehit, &a_ok));

  ASSERT_TRUE(killed);
  EXPECT_EQ(rehit, 2u);  // A's entries survived the withdrawal
  EXPECT_TRUE(a_ok);

  // Withdrawal accounting, shard by shard: B recorded into its content's
  // owning shards and withdrew exactly there; every other shard's counters
  // and entry table are untouched. (The rehit pass above adds hit/lookup
  // traffic but no records, so records/forgets/sizes are exact.)
  const auto after = snapshot(idx);
  EXPECT_EQ(idx.size(), index_size_before_b);
  std::uint64_t withdrawn = 0;
  for (std::size_t s = 0; s < idx.shard_count(); ++s) {
    const std::uint64_t rec_delta = after[s].records - before_b[s].records;
    const std::uint64_t fgt_delta = after[s].forgets - before_b[s].forgets;
    EXPECT_EQ(rec_delta, fgt_delta) << "shard " << s
                                    << ": withdrawal not balanced";
    EXPECT_EQ(idx.shard_size(s), sizes_before_b[s]) << "shard " << s;
    withdrawn += fgt_delta;
    if (rec_delta == 0) {
      EXPECT_EQ(fgt_delta, 0u)
          << "shard " << s << ": withdrawal touched a non-owning shard";
    }
  }
  EXPECT_EQ(withdrawn, 2u);  // both of B's chunks de-indexed
}

// --- epoch GC vs a racing pinned commit --------------------------------------

// A commit parked mid-flight (PrePublish: dedup Refs taken, version not yet
// published, so the chunks appear in no tree) holds pins on chunks that are
// simultaneously GC candidates via a dropped version. The epoch-based
// concurrent sweep — marking one version-manager shard per slice — must
// keep every pinned chunk, still reclaim genuinely dead ones, and the
// resumed commit must publish and restore bit-exactly.
TEST(ShardTest, EpochGcKeepsChunksPinnedByParkedCommit) {
  TestCluster tc(4, /*version_shards=*/4);
  // Isolated reducer: owns a 16-shard index and hooks the store's reclaim /
  // epoch / pin-source interfaces itself.
  Reducer red(*tc.store, all_on());

  blob::GarbageCollector::Result gc1;
  blob::GarbageCollector::Result gc2;
  bool b_ok = false;
  tc.run([](TestCluster* tc, Reducer* red,
            blob::GarbageCollector::Result* gc1,
            blob::GarbageCollector::Result* gc2, bool* b_ok) -> Task<> {
    const Buffer x = Buffer::pattern(2 * kChunk, 77);  // pinned by B
    Buffer v1_data = x;
    v1_data.append(Buffer::pattern(kChunk, 78));       // dead after v2
    const Buffer v2_data = Buffer::pattern(3 * kChunk, 79);

    BlobClient a(*tc->store, tc->client_node);
    const BlobId blob_a = co_await a.create();
    co_await write_reduced(a, *red, blob_a, 0, v1_data);
    co_await write_reduced(a, *red, blob_a, 0, v2_data);

    // B re-commits X: both chunks are dedup hits against v1's entries, so
    // B holds Refs (pins) while parked at PrePublish.
    bool parked = false;
    sim::Event resume(tc->sim);
    blob::CommitProbe probe =
        [&parked, &resume](blob::CommitStage s) -> Task<> {
      if (s == blob::CommitStage::PrePublish) {
        parked = true;
        co_await resume.wait();
      }
    };
    BlobClient::ExtentReader reader =
        [&x](std::uint64_t off, std::uint64_t len) -> Task<Buffer> {
      co_return x.slice(off, len);
    };
    blob::CommitOptions opts;
    opts.reducer = red;
    opts.probe = &probe;
    BlobClient b(*tc->store, tc->client_node);
    const BlobId blob_b = co_await b.create();
    VersionId vb = 0;
    bool done = false;
    tc->sim.spawn(
        "racer",
        [](BlobClient* b, BlobId blob, const Buffer* x,
           BlobClient::ExtentReader* reader, blob::CommitOptions* opts,
           VersionId* vb, bool* done) -> Task<> {
          std::vector<BlobClient::ExtentSpec> specs;
          specs.push_back({0, x->size()});
          *vb = co_await b->write_extents_via(blob, std::move(specs),
                                              reader, *opts);
          *done = true;
        }(&b, blob_b, &x, &reader, &opts, &vb, &done));
    while (!parked) co_await tc->sim.delay(100 * sim::kMicrosecond);

    // Concurrent sweep while B is parked: drop v1, keep v2. X's chunks are
    // candidates (only v1's dropped tree references them) but pinned.
    blob::GarbageCollector gc(*tc->store);
    *gc1 = co_await gc.collect_concurrent(blob_a, 2);

    resume.set();
    while (!done) co_await tc->sim.delay(100 * sim::kMicrosecond);

    // Second sweep after B published: v1 is already tombstoned, X's chunks
    // are live via B's tree, and nothing further is reclaimable.
    *gc2 = co_await gc.collect_concurrent(blob_a, 2);
    const Buffer back = co_await b.read(blob_b, vb, 0, x.size());
    *b_ok = (back == x);
  }(&tc, &red, &gc1, &gc2, &b_ok));

  // Sweep 1: the dead chunk went, the pinned ones stayed, and the mark ran
  // one slice per version-manager shard (the incremental walk).
  EXPECT_EQ(gc1.chunks_deleted, 1u);
  EXPECT_EQ(gc1.reclaimed_bytes, kChunk);
  EXPECT_GE(gc1.chunks_kept_shared, 2u);
  EXPECT_EQ(gc1.mark_slices, 4u);
  // Sweep 2: nothing left to reclaim, and the read-back across it is
  // bit-exact — the resumed commit's chunks really survived both sweeps.
  EXPECT_EQ(gc2.chunks_deleted, 0u);
  EXPECT_EQ(gc2.reclaimed_bytes, 0u);
  EXPECT_TRUE(b_ok);
}

// --- version-manager sharding ------------------------------------------------

// The blob version-slot table and the named-blob registry must behave
// identically at every shard count: create/write/read round-trips, name
// binding and resolution, stat, and the full-registry walk.
TEST(ShardTest, NamedRegistryCorrectAcrossShardCounts) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                   std::size_t{16}}) {
    TestCluster tc(4, shards);
    ASSERT_EQ(tc.store->version_manager().shard_count(), shards);

    constexpr std::size_t kBlobs = 12;
    std::vector<BlobId> ids;
    std::vector<BlobId> looked_up;
    std::size_t read_ok = 0;
    std::size_t stat_ok = 0;
    tc.run([](TestCluster* tc, std::vector<BlobId>* ids,
              std::vector<BlobId>* looked_up, std::size_t* read_ok,
              std::size_t* stat_ok) -> Task<> {
      BlobClient client(*tc->store, tc->client_node);
      for (std::size_t k = 0; k < kBlobs; ++k) {
        const BlobId id = co_await client.create();
        ids->push_back(id);
        const Buffer data =
            Buffer::pattern(2 * kChunk, static_cast<int>(100 + k));
        const VersionId v = co_await client.write(id, 0, data);
        co_await client.bind_name(common::strf("ckpt/job%zu", k), id);
        const Buffer back = co_await client.read(id, v, 0, data.size());
        if (back == data) ++(*read_ok);
      }
      for (std::size_t k = 0; k < kBlobs; ++k) {
        looked_up->push_back(
            co_await client.lookup_name(common::strf("ckpt/job%zu", k)));
        const blob::BlobMeta meta = co_await client.stat((*ids)[k]);
        if (meta.id == (*ids)[k] && meta.versions.size() == 1) ++(*stat_ok);
      }
    }(&tc, &ids, &looked_up, &read_ok, &stat_ok));

    EXPECT_EQ(read_ok, kBlobs) << "shards=" << shards;
    EXPECT_EQ(stat_ok, kBlobs) << "shards=" << shards;
    ASSERT_EQ(looked_up.size(), kBlobs) << "shards=" << shards;
    for (std::size_t k = 0; k < kBlobs; ++k) {
      EXPECT_EQ(looked_up[k], ids[k]) << "shards=" << shards << " k=" << k;
    }
    // An unbound name resolves to 0 at every shard count.
    EXPECT_EQ(tc.store->version_manager().peek_name("ckpt/none"), 0u);

    // The registry walk sees every blob exactly once, whatever the shard
    // layout.
    std::size_t walked = 0;
    tc.store->version_manager().for_each_blob(
        [&walked](const blob::BlobMeta&) { ++walked; });
    EXPECT_EQ(walked, kBlobs) << "shards=" << shards;

    // With real sharding the load actually spreads: 12 blobs + 12 names
    // hash across more than one queue.
    if (shards > 1) {
      std::size_t active = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        if (tc.store->version_manager().shard_requests(s) > 0) ++active;
      }
      EXPECT_GE(active, 2u) << "shards=" << shards;
    }
  }
}

}  // namespace
}  // namespace blobcr::reduce
