// Asynchronous commit pipeline tests: the FlushAgent's provisional-version
// contract, queue/merge/backpressure policies, and a randomized
// crash-consistency harness — seeded fail-stop injection at every pipeline
// stage boundary (staged / reducing / putting / pre-publish / post-publish /
// parity-encode) followed by a bit-exact restore of the last published
// version.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/strutil.h"
#include "blob/client.h"
#include "blob/gc.h"
#include "blob/store.h"
#include "common/rng.h"
#include "apps/scenarios.h"
#include "core/blobcr.h"
#include "core/mirror_device.h"
#include "flush/flush_agent.h"
#include "ft/failure.h"
#include "ft/runner.h"
#include "redundancy/manager.h"
#include "reduce/reducer.h"
#include "sim/sim.h"

namespace blobcr {
namespace {

using common::Buffer;
using common::Rng;
using sim::Simulation;
using sim::Task;

constexpr std::uint64_t kChunk = 4096;
constexpr std::uint64_t kImage = 32 * kChunk;

/// Small in-memory cluster + backing blob, one per harness iteration.
struct FlushRig {
  Simulation sim;
  std::unique_ptr<net::Fabric> fabric;
  std::vector<std::unique_ptr<storage::Disk>> disks;
  std::unique_ptr<blob::BlobStore> store;
  std::unique_ptr<reduce::Reducer> reducer;
  blob::BlobId base = 0;
  net::NodeId host = 0;
  sim::Event never;  // parking spot for kill-probes (never set)

  explicit FlushRig(bool with_reduction = false, int replication = 1)
      : never(sim) {
    const std::size_t n_data = 3;
    const std::size_t total = 2 + 2 + n_data + 1;
    net::Fabric::Config fcfg;
    fcfg.node_count = total;
    fcfg.nic_bandwidth_bps = 1e9;
    fcfg.latency = 50 * sim::kMicrosecond;
    fabric = std::make_unique<net::Fabric>(sim, fcfg);
    blob::BlobStore::Config cfg;
    cfg.version_manager_node = 0;
    cfg.provider_manager_node = 1;
    cfg.metadata_nodes = {2, 3};
    storage::Disk::Config dcfg;
    dcfg.bandwidth_bps = 1e9;
    dcfg.position_cost = 100 * sim::kMicrosecond;
    for (std::size_t i = 0; i < n_data + 1; ++i) {
      disks.push_back(
          std::make_unique<storage::Disk>(sim, common::strf("d%zu", i), dcfg));
    }
    for (std::size_t i = 0; i < n_data; ++i) {
      cfg.data_providers.push_back(
          {static_cast<net::NodeId>(4 + i), disks[i].get(), 1});
    }
    cfg.default_chunk_size = kChunk;
    cfg.tree_depth = 10;
    cfg.replication = replication;
    store = std::make_unique<blob::BlobStore>(sim, *fabric, cfg);
    host = static_cast<net::NodeId>(total - 1);
    if (with_reduction) {
      reduce::ReductionConfig rcfg;
      rcfg.enabled = true;
      reducer = std::make_unique<reduce::Reducer>(*store, rcfg);
    }
    run([](FlushRig* rig) -> Task<> {
      blob::BlobClient client(*rig->store, rig->host);
      rig->base = co_await client.create(kChunk);
      co_await client.write(rig->base, 0, Buffer::pattern(kImage, 42));
    }(this));
  }

  void run(Task<> t) {
    auto p = sim.spawn("test", std::move(t));
    sim.run();
    if (p->error()) std::rethrow_exception(p->error());
  }
};

core::MirrorDevice::Config mirror_config(flush::QueuePolicy policy,
                                         std::size_t max_pending = 2) {
  core::MirrorDevice::Config mcfg;
  mcfg.capacity = kImage;
  mcfg.flush.enabled = true;
  mcfg.flush.policy = policy;
  mcfg.flush.max_pending = max_pending;
  return mcfg;
}

// ---------------------------------------------------------------------------
// Contract basics: provisional id, publish order, wait_drained, merge.
// ---------------------------------------------------------------------------

TEST(FlushAgentTest, ProvisionalVersionPublishesAndReadsBack) {
  FlushRig rig;
  core::MirrorDevice m(*rig.store, rig.host, *rig.disks[3], 99, rig.base, 1,
                       mirror_config(flush::QueuePolicy::Queue), nullptr);
  rig.run([](FlushRig* rig, core::MirrorDevice* m) -> Task<> {
    co_await m->write(0, Buffer::pattern(3 * kChunk, 7));
    const blob::BlobId ckpt = co_await m->ioctl_clone();
    const blob::VersionId v = co_await m->ioctl_commit();
    EXPECT_EQ(v, 2u);  // clone is version 1, first commit reserves 2

    // Provisional: not yet readable, invisible to latest().
    blob::BlobClient probe(*rig->store, rig->host);
    const blob::BlobMeta meta = co_await probe.stat(ckpt);
    EXPECT_EQ(meta.latest(), 1u);
    EXPECT_TRUE(meta.version(v).pending);

    co_await m->wait_drained();
    const blob::BlobMeta after = co_await probe.stat(ckpt);
    EXPECT_EQ(after.latest(), v);
    const Buffer got = co_await probe.read(ckpt, v, 0, 3 * kChunk);
    EXPECT_TRUE(got == Buffer::pattern(3 * kChunk, 7));
    EXPECT_GT(m->flush_agent()->stats().drains_completed, 0u);
  }(&rig, &m));
}

TEST(FlushAgentTest, QueuedCommitsPublishInSubmissionOrder) {
  FlushRig rig;
  core::MirrorDevice m(*rig.store, rig.host, *rig.disks[3], 99, rig.base, 1,
                       mirror_config(flush::QueuePolicy::Queue, 4), nullptr);
  rig.run([](FlushRig* rig, core::MirrorDevice* m) -> Task<> {
    const blob::BlobId ckpt = co_await m->ioctl_clone();
    std::vector<blob::VersionId> ids;
    for (int i = 0; i < 3; ++i) {
      co_await m->write(static_cast<std::uint64_t>(i) * kChunk,
                        Buffer::pattern(kChunk, 100 + i));
      ids.push_back(co_await m->ioctl_commit());
    }
    EXPECT_EQ(ids[0] + 1, ids[1]);
    EXPECT_EQ(ids[1] + 1, ids[2]);
    co_await m->wait_drained();
    blob::BlobClient probe(*rig->store, rig->host);
    const blob::BlobMeta meta = co_await probe.stat(ckpt);
    EXPECT_EQ(meta.latest(), ids[2]);
    // Each version captured exactly its prefix of writes: version ids[i]
    // holds writes 0..i, and the chunk after them is still base content.
    for (int i = 0; i < 3; ++i) {
      for (int k = 0; k <= i; ++k) {
        const Buffer got = co_await probe.read(
            ckpt, ids[i], static_cast<std::uint64_t>(k) * kChunk, kChunk);
        EXPECT_TRUE(got == Buffer::pattern(kChunk, 100 + k))
            << "version " << ids[i] << " chunk " << k;
      }
      if (i < 2) {
        const std::uint64_t next = static_cast<std::uint64_t>(i + 1) * kChunk;
        const Buffer got = co_await probe.read(ckpt, ids[i], next, kChunk);
        EXPECT_TRUE(got == Buffer::pattern(kImage, 42).slice(next, kChunk))
            << "version " << ids[i] << " leaked a later write";
      }
    }
  }(&rig, &m));
}

TEST(FlushAgentTest, MergePolicyCoalescesQueuedGenerations) {
  FlushRig rig;
  core::MirrorDevice m(*rig.store, rig.host, *rig.disks[3], 99, rig.base, 1,
                       mirror_config(flush::QueuePolicy::Merge, 8), nullptr);
  rig.run([](FlushRig* rig, core::MirrorDevice* m) -> Task<> {
    const blob::BlobId ckpt = co_await m->ioctl_clone();
    // First commit occupies the drain; the next two land while it runs and
    // coalesce into one queued generation sharing one version id.
    co_await m->write(0, Buffer::pattern(kChunk, 1));
    const blob::VersionId v1 = co_await m->ioctl_commit();
    co_await m->write(kChunk, Buffer::pattern(kChunk, 2));
    const blob::VersionId v2 = co_await m->ioctl_commit();
    co_await m->write(2 * kChunk, Buffer::pattern(kChunk, 3));
    const blob::VersionId v3 = co_await m->ioctl_commit();
    EXPECT_NE(v1, v2);
    EXPECT_EQ(v2, v3);  // merged
    co_await m->wait_drained();
    EXPECT_EQ(m->flush_agent()->stats().commits_merged, 1u);
    blob::BlobClient probe(*rig->store, rig->host);
    const Buffer got = co_await probe.read(ckpt, v3, 0, 3 * kChunk);
    Buffer expect = Buffer::pattern(kChunk, 1);
    expect.append(Buffer::pattern(kChunk, 2));
    expect.append(Buffer::pattern(kChunk, 3));
    EXPECT_TRUE(got == expect);
  }(&rig, &m));
}

TEST(FlushAgentTest, BackpressureBoundsStagedGenerations) {
  FlushRig rig;
  core::MirrorDevice m(*rig.store, rig.host, *rig.disks[3], 99, rig.base, 1,
                       mirror_config(flush::QueuePolicy::Queue, 1), nullptr);
  rig.run([](FlushRig* rig, core::MirrorDevice* m) -> Task<> {
    (void)co_await m->ioctl_clone();
    for (int i = 0; i < 4; ++i) {
      co_await m->write(static_cast<std::uint64_t>(i) * kChunk,
                        Buffer::pattern(kChunk, 50 + i));
      (void)co_await m->ioctl_commit();
    }
    co_await m->wait_drained();
    const flush::FlushStats& st = m->flush_agent()->stats();
    EXPECT_EQ(st.drains_completed, 4u);
    EXPECT_GT(st.backpressure_waits, 0u);
    EXPECT_GT(st.blocked_time, 0);
    (void)rig;
  }(&rig, &m));
}

TEST(FlushAgentTest, DrainFailurePoisonsAgentAndDropsQueuedGenerations) {
  // A queued generation is a *delta* on top of the generation draining
  // ahead of it. If that drain fails (here: a data provider dies mid-put),
  // publishing the queued delta would create a version silently missing
  // the failed dirty ranges — the agent must go dead instead, dropping the
  // queue and reporting the failure to every waiter.
  FlushRig rig(/*with_reduction=*/false, /*replication=*/2);
  core::MirrorDevice m(*rig.store, rig.host, *rig.disks[3], 99, rig.base, 1,
                       mirror_config(flush::QueuePolicy::Queue, 4), nullptr);
  rig.run([](FlushRig* rig, core::MirrorDevice* m) -> Task<> {
    const blob::BlobId ckpt = co_await m->ioctl_clone();
    co_await m->write(0, Buffer::pattern(kImage, 77));
    const blob::VersionId v1 = co_await m->ioctl_commit();
    co_await m->wait_drained();

    bool armed = true;
    m->flush_agent()->set_stage_probe(
        [rig, &armed](blob::CommitStage s) -> Task<> {
          if (armed && s == blob::CommitStage::Putting) {
            armed = false;
            rig->store->fail_node(4);  // a replica target dies mid-drain
          }
          co_return;
        });
    co_await m->write(0, Buffer::pattern(kImage, 88));
    const blob::VersionId vA = co_await m->ioctl_commit();  // drain fails
    co_await m->write(0, Buffer::pattern(2 * kChunk, 99));
    const blob::VersionId vB = co_await m->ioctl_commit();  // queued, dropped
    co_await rig->sim.delay(5 * sim::kSecond);

    EXPECT_TRUE(m->flush_agent()->failed());
    bool threw = false;
    try {
      co_await m->wait_drained();
    } catch (const blob::BlobError&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << "drain failure not reported";
    // Sticky: a later waiter still sees the agent as failed.
    threw = false;
    try {
      co_await m->wait_drained();
    } catch (const blob::BlobError&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << "poisoned agent reported healthy";

    // Neither doomed generation published; the baseline stays latest and
    // restores bit for bit from the surviving replicas.
    blob::BlobClient probe(*rig->store, rig->host);
    const blob::BlobMeta meta = co_await probe.stat(ckpt);
    EXPECT_EQ(meta.latest(), v1);
    EXPECT_TRUE(meta.version(vA).pending);
    EXPECT_TRUE(meta.version(vB).pending);
    const Buffer got = co_await probe.read(ckpt, v1, 0, kImage);
    EXPECT_TRUE(got == Buffer::pattern(kImage, 77));
  }(&rig, &m));
}

// ---------------------------------------------------------------------------
// Randomized crash-consistency harness. Each seed: build a rig, publish a
// couple of baseline snapshots, then fail-stop the drain at a random stage
// boundary and require (a) the latest *published* version restores
// bit-exactly, (b) a GC pass after the crash reclaims nothing it should
// not, (c) a restarted device can keep checkpointing into the same image.
// ---------------------------------------------------------------------------

constexpr blob::CommitStage kStages[] = {
    blob::CommitStage::Staged,      blob::CommitStage::Reducing,
    blob::CommitStage::Putting,     blob::CommitStage::PrePublish,
    blob::CommitStage::PostPublish, blob::CommitStage::ParityEncode,
};

struct HarnessState {
  std::vector<std::byte> ref;  // live image content
  std::map<blob::VersionId, std::vector<std::byte>> expected;  // at submit
  blob::BlobId ckpt = 0;
};

Task<> do_random_writes(Rng* rng, core::MirrorDevice* m, HarnessState* st) {
  const int n = 2 + static_cast<int>(rng->uniform(5));
  for (int i = 0; i < n; ++i) {
    const std::uint64_t off = rng->uniform(kImage - 1);
    const std::uint64_t len = 1 + rng->uniform(std::min<std::uint64_t>(
                                      kImage - off, 3 * kChunk) - 1 + 1);
    Buffer data = Buffer::pattern(len, rng->next_u64());
    std::memcpy(st->ref.data() + off, data.bytes().data(), len);
    co_await m->write(off, std::move(data));
  }
}

void run_one_seed(int seed) {
  Rng rng(0xf1a5'0000 + static_cast<std::uint64_t>(seed));
  const bool with_reduction = rng.uniform(2) == 0;
  const flush::QueuePolicy policy = rng.uniform(2) == 0
                                        ? flush::QueuePolicy::Queue
                                        : flush::QueuePolicy::Merge;
  const blob::CommitStage kill_stage = kStages[rng.uniform(6)];
  const int doomed_commits = 1 + static_cast<int>(rng.uniform(2));

  FlushRig rig(with_reduction);
  auto st = std::make_unique<HarnessState>();
  {
    const Buffer base = Buffer::pattern(kImage, 42);
    st->ref.assign(base.bytes().begin(), base.bytes().end());
  }

  auto mirror = std::make_unique<core::MirrorDevice>(
      *rig.store, rig.host, *rig.disks[3], 99, rig.base, 1,
      mirror_config(policy, 2), nullptr, rig.reducer.get());

  // Phase 1: one or two fully-published baseline snapshots.
  rig.run([](FlushRig* rig, Rng* rng, core::MirrorDevice* m,
             HarnessState* st) -> Task<> {
    st->ckpt = co_await m->ioctl_clone();
    const int rounds = 1 + static_cast<int>(rng->uniform(2));
    for (int r = 0; r < rounds; ++r) {
      co_await do_random_writes(rng, m, st);
      const blob::VersionId v = co_await m->ioctl_commit();
      st->expected[v] = st->ref;
    }
    co_await m->wait_drained();
    (void)rig;
  }(&rig, &rng, mirror.get(), st.get()));

  // Phase 2: doomed commits; the drain is fail-stopped at the chosen stage
  // boundary via the probe (the kill runs from a scheduled callback, the
  // probe itself parks until the kill unwinds it).
  bool armed = true;
  core::MirrorDevice* mp = mirror.get();
  mirror->flush_agent()->set_stage_probe(
      [&rig, &armed, mp, kill_stage](blob::CommitStage s) -> Task<> {
        if (armed && s == kill_stage) {
          armed = false;
          rig.sim.call_in(0, [mp] { mp->flush_agent()->fail_stop(); });
          co_await rig.never.wait();  // killed while suspended here
        }
      });
  rig.run([](FlushRig* rig, Rng* rng, core::MirrorDevice* m, HarnessState* st,
             int doomed) -> Task<> {
    for (int r = 0; r < doomed; ++r) {
      co_await do_random_writes(rng, m, st);
      try {
        const blob::VersionId v = co_await m->ioctl_commit();
        st->expected[v] = st->ref;  // overwritten on merge: latest capture
      } catch (const blob::BlobError&) {
        break;  // agent already fail-stopped (kill during submit window)
      }
      // Give the drain a random amount of runway before the next commit.
      co_await rig->sim.delay(rng->uniform(40) * sim::kMillisecond);
    }
    co_await rig->sim.delay(2 * sim::kSecond);  // let survivors finish
  }(&rig, &rng, mirror.get(), st.get(), doomed_commits));

  // The injection must actually have fired: at least one doomed commit was
  // submitted, so the probe saw every stage up to kill_stage and the agent
  // is fail-stopped now.
  EXPECT_TRUE(mirror->flush_agent()->failed())
      << "kill at stage " << blob::commit_stage_name(kill_stage)
      << " never fired";

  // Fail-stop of the node: the device (and its staged generations) die.
  mirror.reset();

  // Phase 3: the latest *published* version must be one we recorded and
  // must restore bit for bit — no missing or dangling chunks, no torn
  // content, no matter where the kill landed.
  blob::VersionId latest = 0;
  rig.run([](FlushRig* rig, HarnessState* st, blob::VersionId* out) -> Task<> {
    blob::BlobClient client(*rig->store, rig->host);
    const blob::BlobMeta meta = co_await client.stat(st->ckpt);
    *out = meta.latest();
  }(&rig, st.get(), &latest));
  ASSERT_NE(latest, 0u);
  ASSERT_TRUE(st->expected.count(latest) != 0)
      << "latest published version " << latest << " was never recorded";
  rig.run([](FlushRig* rig, HarnessState* st, blob::VersionId* v) -> Task<> {
    blob::BlobClient client(*rig->store, rig->host);
    const Buffer got = co_await client.read(st->ckpt, *v, 0, kImage);
    const Buffer expect = Buffer::real(st->expected.at(*v));
    EXPECT_TRUE(got == expect) << "published version " << *v << " is torn";
  }(&rig, st.get(), &latest));
  if (::testing::Test::HasFailure()) return;

  // Phase 4: GC after the crash. Dead in-flight drains withdrew their pins
  // and index entries, so collecting everything below `latest` must leave
  // the published version intact.
  blob::GarbageCollector gc(*rig.store);
  (void)gc.collect(st->ckpt, latest);
  rig.run([](FlushRig* rig, HarnessState* st, blob::VersionId* v) -> Task<> {
    blob::BlobClient client(*rig->store, rig->host);
    const Buffer got = co_await client.read(st->ckpt, *v, 0, kImage);
    EXPECT_TRUE(got == Buffer::real(st->expected.at(*v)))
        << "version " << *v << " damaged by post-crash GC";
  }(&rig, st.get(), &latest));
  if (::testing::Test::HasFailure()) return;

  // Phase 5: a restarted instance keeps checkpointing into the same image
  // (the repository is not wedged, and the dedup index hands out no refs to
  // dead chunks). Re-write content overlapping the crashed commit's data as
  // dedup bait.
  auto restarted = std::make_unique<core::MirrorDevice>(
      *rig.store, rig.host, *rig.disks[3], 100, st->ckpt, latest,
      mirror_config(policy, 2), nullptr, rig.reducer.get());
  restarted->set_checkpoint_blob(st->ckpt, latest);
  st->ref = st->expected.at(latest);
  rig.run([](FlushRig* rig, Rng* rng, core::MirrorDevice* m,
             HarnessState* st) -> Task<> {
    co_await do_random_writes(rng, m, st);
    const blob::VersionId v = co_await m->ioctl_commit();
    co_await m->wait_drained();
    blob::BlobClient client(*rig->store, rig->host);
    const Buffer got = co_await client.read(st->ckpt, v, 0, kImage);
    EXPECT_TRUE(got == Buffer::real(st->ref))
        << "post-restart snapshot " << v << " diverged";
  }(&rig, &rng, restarted.get(), st.get()));
}

// ---------------------------------------------------------------------------
// System level: the FT runner with the async pipeline on. Node failures can
// now land mid-drain; "complete global checkpoint" must mean globally
// published, every rollback target must restore with verified digests, and
// the app-blocked share of checkpoint overhead must be accounted.
// ---------------------------------------------------------------------------

TEST(FlushFtIntegrationTest, JobSurvivesFailuresMidDrainWithVerifiedRestores) {
  core::CloudConfig ccfg;
  ccfg.compute_nodes = 24;
  ccfg.metadata_nodes = 2;
  ccfg.backend = core::Backend::BlobCR;
  ccfg.replication = 2;
  ccfg.flush.enabled = true;
  ccfg.os = vm::GuestOsConfig::test_tiny();
  ccfg.vm.os_ram_bytes = 20 * common::kMB;
  core::Cloud cloud(ccfg);

  ft::FtJobConfig job;
  job.instances = 2;
  job.total_work = 90 * sim::kSecond;
  job.checkpoint_interval = 30 * sim::kSecond;
  job.step = 10 * sim::kSecond;
  job.state_bytes = 2 * common::kMB;
  job.real_data = true;
  job.repair_after_restart = true;
  job.failures = ft::FailureSchedule::sample(
      ft::FailureLaw::exponential(250.0), 2, 3600 * sim::kSecond, 17);

  const ft::FtReport rep = ft::run_ft_job(cloud, job);
  EXPECT_TRUE(rep.completed);
  EXPECT_TRUE(rep.verified);
  EXPECT_EQ(rep.useful_work, job.total_work);
  // Blocked time is accounted and is a strict subset of checkpoint overhead.
  EXPECT_GT(rep.ckpt_blocked, 0);
  EXPECT_LT(rep.ckpt_blocked, rep.checkpoint_overhead);
}

TEST(FlushFtIntegrationTest, SyntheticScenarioReportsBlockedTimeAndSizes) {
  core::CloudConfig cfg;
  cfg.compute_nodes = 8;
  cfg.metadata_nodes = 2;
  cfg.backend = core::Backend::BlobCR;
  cfg.flush.enabled = true;
  cfg.os = vm::GuestOsConfig::test_tiny();
  cfg.vm.os_ram_bytes = 20 * common::kMB;
  core::Cloud cloud(cfg);

  apps::SyntheticRun run;
  run.instances = 2;
  run.buffer_bytes = 2 * common::kMB;
  run.real_data = true;
  run.rounds = 2;
  run.do_restart = true;
  const apps::RunResult res =
      apps::run_synthetic(cloud, run, apps::CkptMode::AppLevel);

  EXPECT_TRUE(res.verified);
  ASSERT_EQ(res.checkpoint_times.size(), 2u);
  ASSERT_EQ(res.checkpoint_blocked_times.size(), 2u);
  for (int r = 0; r < 2; ++r) {
    // The VM pause is a strict subset of the end-to-end publish time.
    EXPECT_GT(res.checkpoint_blocked_times[r], 0);
    EXPECT_LT(res.checkpoint_blocked_times[r], res.checkpoint_times[r]);
    // Snapshot sizes are refreshed from the published version records even
    // though the snapshots were recorded while provisional.
    EXPECT_GT(res.snapshot_bytes_per_vm[r], 0u);
  }
}

// ---------------------------------------------------------------------------
// Parity redundancy tier (src/redundancy/): XOR reconstruction correctness,
// and fail-stop exactly at the ParityEncode stage boundary — the commit has
// published by then, so the latest version must restore bit-exactly, the
// kill must leave no half-registered group state, and a GC pass over the
// crashed lineage must leave no orphaned parity blocks in holder caches.
// ---------------------------------------------------------------------------

TEST(RedundancyManagerTest, XorRebuildReconstructsLostMemberBitExact) {
  Simulation s;
  net::Fabric::Config fcfg;
  fcfg.node_count = 4;
  fcfg.nic_bandwidth_bps = 1e9;
  fcfg.latency = 50 * sim::kMicrosecond;
  net::Fabric fabric(s, fcfg);
  redundancy::RedundancyConfig rcfg;
  rcfg.enabled = true;
  rcfg.group_size = 3;
  rcfg.parity_blocks = 1;
  redundancy::Manager mgr(s, fabric, rcfg, {});
  core::DecodedChunkCache c0(1 << 22), c1(1 << 22), c2(1 << 22), c3(1 << 22);
  mgr.attach(0, &c0);
  mgr.attach(1, &c1);
  mgr.attach(2, &c2);
  mgr.attach(3, &c3);

  // Distinct payloads (one deliberately shorter: the XOR zero-pads).
  const Buffer a = Buffer::pattern(kChunk, 11);
  const Buffer b = Buffer::pattern(kChunk, 22);
  const Buffer c = Buffer::pattern(kChunk / 2, 33);
  const auto key = [](blob::ChunkId id) { return core::ChunkKey{id, 0}; };

  const auto run = [&s](Task<> t) {
    auto p = s.spawn("t", std::move(t));
    s.run();
    if (p->error()) std::rethrow_exception(p->error());
  };
  const auto one = [&key](blob::ChunkId id, const Buffer& data) {
    std::vector<redundancy::Manager::ChunkPayload> v;
    v.push_back(redundancy::Manager::ChunkPayload{key(id), id, data});
    return v;
  };
  run([&]() -> Task<> {
    co_await mgr.encode_commit(0, one(101, a));
    co_await mgr.encode_commit(2, one(102, b));
    co_await mgr.encode_commit(3, one(103, c));
  }());
  ASSERT_EQ(mgr.stats().groups_sealed, 1u);
  ASSERT_TRUE(mgr.protects(key(102)));
  EXPECT_EQ(mgr.resident_parity_blocks(), 1u);

  // Node 2 dies: its cached payload is gone, the sealed group survives.
  c2.clear();
  mgr.drop_node(2);
  ASSERT_TRUE(mgr.protects(key(102)));

  // The lost member reconstructs bit-exactly from the survivors + parity.
  std::optional<Buffer> rebuilt;
  run([&]() -> Task<> {
    rebuilt = co_await mgr.rebuild(key(102), 3);
  }());
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_TRUE(*rebuilt == b) << "XOR rebuild diverged from the lost payload";
  EXPECT_EQ(mgr.stats().rebuilds, 1u);
  EXPECT_EQ(mgr.stats().rebuild_bytes, b.size());

  // GC reclaim of any member invalidates the group and erases its parity
  // from the holder cache — no orphaned parity blocks.
  mgr.forget_chunks({101});
  EXPECT_FALSE(mgr.protects(key(102)));
  EXPECT_EQ(mgr.resident_parity_blocks(), 0u);
  EXPECT_EQ(mgr.stats().parity_blocks, 0u);
  EXPECT_GE(mgr.stats().groups_dropped, 1u);
}

// Regression: a sealed group whose parity *holder* fail-stops used to keep
// counting as durable — protects() said yes, stats_ kept the parity bytes,
// and a member rebuild would try to read parity from a dead node's cache.
// The holder's death must invalidate the group so member fetches fall
// through to the repository tier.
TEST(RedundancyManagerTest, DeadParityHolderInvalidatesSealedGroup) {
  Simulation s;
  net::Fabric::Config fcfg;
  fcfg.node_count = 4;
  fcfg.nic_bandwidth_bps = 1e9;
  fcfg.latency = 50 * sim::kMicrosecond;
  net::Fabric fabric(s, fcfg);
  redundancy::RedundancyConfig rcfg;
  rcfg.enabled = true;
  rcfg.group_size = 3;
  rcfg.parity_blocks = 1;
  redundancy::Manager mgr(s, fabric, rcfg, {});
  core::DecodedChunkCache c0(1 << 22), c1(1 << 22), c2(1 << 22), c3(1 << 22);
  mgr.attach(0, &c0);
  mgr.attach(1, &c1);
  mgr.attach(2, &c2);
  mgr.attach(3, &c3);

  const Buffer a = Buffer::pattern(kChunk, 44);
  const Buffer b = Buffer::pattern(kChunk, 55);
  const Buffer c = Buffer::pattern(kChunk, 66);
  const auto key = [](blob::ChunkId id) { return core::ChunkKey{id, 0}; };
  const auto run = [&s](Task<> t) {
    auto p = s.spawn("t", std::move(t));
    s.run();
    if (p->error()) std::rethrow_exception(p->error());
  };
  const auto one = [&key](blob::ChunkId id, const Buffer& data) {
    std::vector<redundancy::Manager::ChunkPayload> v;
    v.push_back(redundancy::Manager::ChunkPayload{key(id), id, data});
    return v;
  };
  run([&]() -> Task<> {
    co_await mgr.encode_commit(0, one(201, a));
    co_await mgr.encode_commit(2, one(202, b));
    co_await mgr.encode_commit(3, one(203, c));
  }());
  ASSERT_EQ(mgr.stats().groups_sealed, 1u);
  const auto gid = mgr.group_of(key(202));
  ASSERT_TRUE(gid.has_value());
  const std::vector<net::NodeId> holders = mgr.holders_of(*gid);
  ASSERT_EQ(holders.size(), 1u);
  const net::NodeId holder = holders[0];
  ASSERT_GT(mgr.stats().parity_bytes, 0u);

  // The holder fail-stops: cache contents gone, node leaves the tier.
  (holder == 0 ? c0 : holder == 1 ? c1 : holder == 2 ? c2 : c3).clear();
  mgr.drop_node(holder);

  // The group is unrecoverable and must stop counting as durable.
  EXPECT_FALSE(mgr.protects(key(202)));
  EXPECT_EQ(mgr.stats().parity_blocks, 0u);
  EXPECT_EQ(mgr.stats().parity_bytes, 0u);
  EXPECT_EQ(mgr.resident_parity_blocks(), 0u);

  // A member rebuild falls through (nullopt) — the caller drops to the
  // repository tier — instead of pretending the dead holder's parity is
  // reachable. Surviving *resident* member copies keep serving: they never
  // depended on the holder.
  std::optional<Buffer> rebuilt;
  run([&]() -> Task<> { rebuilt = co_await mgr.rebuild(key(202), 3); }());
  EXPECT_FALSE(rebuilt.has_value());
  std::optional<Buffer> fetched;
  run([&]() -> Task<> {
    fetched = co_await mgr.fetch_resident(key(202), 3);
  }());
  ASSERT_TRUE(fetched.has_value());
  EXPECT_TRUE(*fetched == b);

  // Survivor commits keep working after the round-robin shrank: a fresh
  // line seals into a new group held by a live node.
  run([&]() -> Task<> {
    co_await mgr.encode_commit(0, one(301, a));
    co_await mgr.encode_commit(2, one(302, b));
    co_await mgr.encode_commit(3, one(303, c));
  }());
  EXPECT_EQ(mgr.stats().groups_sealed, 2u);
  EXPECT_TRUE(mgr.protects(key(302)));
}

TEST(FlushParityTest, KillAtParityEncodeRestoresBitExactWithNoOrphanedParity) {
  FlushRig rig;
  redundancy::RedundancyConfig rcfg;
  rcfg.enabled = true;
  rcfg.group_size = 4;
  rcfg.parity_blocks = 1;
  redundancy::Manager mgr(rig.sim, *rig.fabric, rcfg, {});
  const std::uint64_t hook = rig.store->add_chunk_reclaim_hook(
      [&mgr](const std::vector<blob::ChunkId>& ids) {
        mgr.forget_chunks(ids);
      });

  core::MirrorDevice::Config mcfg = mirror_config(flush::QueuePolicy::Queue, 2);
  mcfg.redundancy = &mgr;
  // Two committing nodes so parity groups can form (the tier needs >= 2
  // attached nodes; with 2, each member seals into a width-1 group whose
  // parity block lives on the *other* node — a peer-held replica).
  auto m0 = std::make_unique<core::MirrorDevice>(
      *rig.store, rig.host, *rig.disks[3], 99, rig.base, 1, mcfg, nullptr,
      nullptr);
  auto m1 = std::make_unique<core::MirrorDevice>(
      *rig.store, static_cast<net::NodeId>(rig.host - 1), *rig.disks[3], 101,
      rig.base, 1, mcfg, nullptr, nullptr);

  // Baseline: both nodes publish a snapshot; the drains encode parity.
  blob::BlobId ckpt0 = 0;
  const Buffer base_content = Buffer::pattern(2 * kChunk, 7);
  rig.run([&]() -> Task<> {
    ckpt0 = co_await m0->ioctl_clone();
    co_await m0->write(0, base_content);
    (void)co_await m0->ioctl_commit();
    const blob::BlobId ckpt1 = co_await m1->ioctl_clone();
    co_await m1->write(0, Buffer::pattern(2 * kChunk, 9));
    (void)co_await m1->ioctl_commit();
    co_await m0->wait_drained();
    co_await m1->wait_drained();
    (void)ckpt1;
  }());
  ASSERT_GT(mgr.stats().members_encoded, 0u) << "parity tier never engaged";
  ASSERT_GT(mgr.stats().groups_sealed, 0u);
  EXPECT_EQ(mgr.stats().parity_blocks, mgr.resident_parity_blocks());

  // Doomed commit on m0, fail-stopped exactly at the ParityEncode boundary.
  // The stage fires after publish, so the version IS durable; the kill must
  // leave the group state exactly as it was before the commit.
  const std::uint64_t encoded_before = mgr.stats().members_encoded;
  bool armed = true;
  core::MirrorDevice* mp = m0.get();
  m0->flush_agent()->set_stage_probe(
      [&rig, &armed, mp](blob::CommitStage s) -> Task<> {
        if (armed && s == blob::CommitStage::ParityEncode) {
          armed = false;
          rig.sim.call_in(0, [mp] { mp->flush_agent()->fail_stop(); });
          co_await rig.never.wait();  // killed while suspended here
        }
      });
  const Buffer doomed_content = Buffer::pattern(2 * kChunk, 13);
  rig.run([&]() -> Task<> {
    co_await m0->write(0, doomed_content);
    (void)co_await m0->ioctl_commit();
    co_await rig.sim.delay(2 * sim::kSecond);
  }());
  EXPECT_TRUE(m0->flush_agent()->failed()) << "parity-encode kill never fired";
  EXPECT_EQ(mgr.stats().members_encoded, encoded_before)
      << "a fail-stop mid-encode half-registered a member";
  EXPECT_EQ(mgr.stats().parity_blocks, mgr.resident_parity_blocks());

  // The doomed commit published before the kill: it restores bit-exactly.
  rig.run([&]() -> Task<> {
    blob::BlobClient client(*rig.store, rig.host);
    const blob::BlobMeta meta = co_await client.stat(ckpt0);
    const Buffer got =
        co_await client.read(ckpt0, meta.latest(), 0, doomed_content.size());
    EXPECT_TRUE(got == doomed_content) << "published version is torn";
  }());

  // GC the superseded baseline version. Its chunks were parity members; the
  // reclaim hook must drop their groups and erase the parity blocks from
  // the holder caches — nothing orphaned.
  const std::uint64_t dropped_before = mgr.stats().groups_dropped;
  blob::GarbageCollector gc(*rig.store);
  rig.run([&]() -> Task<> {
    blob::BlobClient client(*rig.store, rig.host);
    const blob::BlobMeta meta = co_await client.stat(ckpt0);
    (void)gc.collect(ckpt0, meta.latest());
  }());
  EXPECT_GT(mgr.stats().groups_dropped, dropped_before)
      << "GC reclaim never invalidated the superseded parity groups";
  EXPECT_EQ(mgr.stats().parity_blocks, mgr.resident_parity_blocks())
      << "orphaned parity blocks survived the GC";
  rig.store->remove_chunk_reclaim_hook(hook);
}

TEST(FlushCrashConsistencyTest, RandomKillNeverExposesTornSnapshot) {
  constexpr int kSeeds = 220;
  for (int seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    run_one_seed(seed);
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "crash-consistency harness failed at seed " << seed
                    << " (rerun: --gtest_filter=FlushCrashConsistencyTest.* "
                       "and inspect this seed)";
      return;
    }
  }
}

}  // namespace
}  // namespace blobcr
