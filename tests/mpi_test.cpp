// Tests for mini-MPI (send/recv/sendrecv/barrier across VMs), BLCR dumps and
// the coordinated checkpoint protocol.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/strutil.h"
#include "img/mem_device.h"
#include "mpi/blcr.h"
#include "mpi/coordinated.h"
#include "mpi/mpi.h"
#include "sim/sim.h"
#include "vm/guest_os.h"
#include "vm/vm_instance.h"

namespace blobcr::mpi {
namespace {

using common::Buffer;
using sim::Simulation;
using sim::Task;
using sim::Time;

/// Two VMs on two nodes, tiny real guest OS on each.
struct TestRig {
  Simulation sim;
  std::unique_ptr<net::Fabric> fabric;
  std::vector<std::unique_ptr<img::MemDevice>> devs;
  std::vector<std::unique_ptr<vm::VmInstance>> vms;
  std::unique_ptr<MpiWorld> world;

  explicit TestRig(std::size_t n_vms = 2) {
    net::Fabric::Config fcfg;
    fcfg.node_count = n_vms;
    fcfg.nic_bandwidth_bps = 100e6;
    fcfg.latency = 100 * sim::kMicrosecond;
    fabric = std::make_unique<net::Fabric>(sim, fcfg);
    world = std::make_unique<MpiWorld>(sim, *fabric);
    world->set_size(static_cast<int>(n_vms));
    for (std::size_t i = 0; i < n_vms; ++i) {
      devs.push_back(std::make_unique<img::MemDevice>(64 * 1024 * 1024));
      vm::VmConfig cfg;
      cfg.name = common::strf("vm%zu", i);
      cfg.os_ram_bytes = 10 * common::kMB;
      vms.push_back(std::make_unique<vm::VmInstance>(
          sim, static_cast<net::NodeId>(i), *devs.back(), cfg));
    }
  }

  ~TestRig() {
    // Unwind any still-blocked processes while channels/VMs are alive.
    sim.shutdown();
  }

  /// Formats + mounts a guest FS on VM i (no full OS boot needed here).
  void mount_fs(std::size_t i) {
    auto p = sim.spawn("mkfs", [](TestRig* rig, std::size_t vi) -> Task<> {
      guestfs::FsConfig cfg;
      co_await guestfs::SimpleFs::mkfs(*rig->devs[vi], cfg);
      auto fs = co_await guestfs::SimpleFs::mount(*rig->devs[vi]);
      fs->mkdir("/ckpt");
      rig->vms[vi]->adopt_fs(std::move(fs));
    }(this, i));
    sim.run();
    if (p->error()) std::rethrow_exception(p->error());
  }

  void run_all() {
    sim.run();
    for (const auto& v : vms) {
      for (const auto& p : v->guest_procs()) {
        if (p->error()) std::rethrow_exception(p->error());
      }
    }
  }
};

TEST(MpiTest, SendRecvAcrossVms) {
  TestRig rig;
  Buffer received;
  rig.vms[0]->start_guest("r0", [&](vm::GuestProcess& gp) -> Task<> {
    rig.world->register_rank(0, &gp);
    auto comm = rig.world->comm(0);
    co_await comm.send(1, 7, Buffer::pattern(1000, 1));
  });
  rig.vms[1]->start_guest("r1", [&](vm::GuestProcess& gp) -> Task<> {
    rig.world->register_rank(1, &gp);
    auto comm = rig.world->comm(1);
    received = co_await comm.recv(0, 7);
  });
  rig.run_all();
  EXPECT_EQ(received, Buffer::pattern(1000, 1));
  EXPECT_EQ(rig.world->messages_sent(), 1u);
}

TEST(MpiTest, TagMatchingSeparatesStreams) {
  TestRig rig;
  std::vector<int> order;
  rig.vms[0]->start_guest("r0", [&](vm::GuestProcess& gp) -> Task<> {
    rig.world->register_rank(0, &gp);
    auto comm = rig.world->comm(0);
    co_await comm.send(1, /*tag=*/20, Buffer::from_string("late"));
    co_await comm.send(1, /*tag=*/10, Buffer::from_string("early"));
  });
  rig.vms[1]->start_guest("r1", [&](vm::GuestProcess& gp) -> Task<> {
    rig.world->register_rank(1, &gp);
    auto comm = rig.world->comm(1);
    const Buffer a = co_await comm.recv(0, 10);
    order.push_back(a.to_string() == "early" ? 1 : -1);
    const Buffer b = co_await comm.recv(0, 20);
    order.push_back(b.to_string() == "late" ? 2 : -2);
  });
  rig.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(MpiTest, BarrierSynchronizesRanks) {
  TestRig rig(3);
  std::vector<Time> after;
  for (int r = 0; r < 3; ++r) {
    rig.vms[static_cast<std::size_t>(r)]->start_guest(
        "rank", [&rig, &after, r](vm::GuestProcess& gp) -> Task<> {
          rig.world->register_rank(r, &gp);
          auto comm = rig.world->comm(r);
          co_await gp.compute(r * sim::kSecond);  // staggered arrival
          co_await comm.barrier();
          after.push_back(rig.sim.now());
        });
  }
  rig.run_all();
  ASSERT_EQ(after.size(), 3u);
  // Nobody leaves before the last arrival at t=2s.
  for (const Time t : after) EXPECT_GE(t, 2 * sim::kSecond);
}

TEST(MpiTest, RepeatedBarriersDoNotCrossTalk) {
  TestRig rig(2);
  std::vector<int> seq;
  for (int r = 0; r < 2; ++r) {
    rig.vms[static_cast<std::size_t>(r)]->start_guest(
        "rank", [&rig, &seq, r](vm::GuestProcess& gp) -> Task<> {
          rig.world->register_rank(r, &gp);
          auto comm = rig.world->comm(r);
          for (int round = 0; round < 5; ++round) {
            co_await comm.barrier();
            if (r == 0) seq.push_back(round);
          }
        });
  }
  rig.run_all();
  EXPECT_EQ(seq, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(MpiTest, SendRecvExchange) {
  TestRig rig(2);
  Buffer got0;
  Buffer got1;
  for (int r = 0; r < 2; ++r) {
    rig.vms[static_cast<std::size_t>(r)]->start_guest(
        "rank", [&rig, &got0, &got1, r](vm::GuestProcess& gp) -> Task<> {
          rig.world->register_rank(r, &gp);
          auto comm = rig.world->comm(r);
          const int other = 1 - r;
          Buffer in = co_await comm.sendrecv(
              other, 5, Buffer::pattern(500, static_cast<std::uint64_t>(r)),
              other, 5);
          (r == 0 ? got0 : got1) = std::move(in);
        });
  }
  rig.run_all();
  EXPECT_EQ(got0, Buffer::pattern(500, 1));
  EXPECT_EQ(got1, Buffer::pattern(500, 0));
}

TEST(MpiTest, PausedReceiverDelaysDelivery) {
  TestRig rig(2);
  Time delivered = 0;
  rig.vms[0]->start_guest("r0", [&](vm::GuestProcess& gp) -> Task<> {
    rig.world->register_rank(0, &gp);
    co_await rig.world->comm(0).send(1, 1, Buffer::pattern(100, 1));
  });
  rig.vms[1]->start_guest("r1", [&](vm::GuestProcess& gp) -> Task<> {
    rig.world->register_rank(1, &gp);
    (void)co_await rig.world->comm(1).recv(0, 1);
    delivered = rig.sim.now();
  });
  rig.sim.call_at(0, [&] { rig.vms[1]->pause(); });
  rig.sim.call_at(2 * sim::kSecond, [&] { rig.vms[1]->resume(); });
  rig.run_all();
  EXPECT_GE(delivered, 2 * sim::kSecond);
}

TEST(BlcrTest, DumpRestoreRoundTrip) {
  TestRig rig(1);
  rig.mount_fs(0);
  bool digest_ok = false;
  std::uint64_t dump_size = 0;
  rig.vms[0]->start_guest("proc", [&](vm::GuestProcess& gp) -> Task<> {
    gp.set_region("data", Buffer::pattern(100'000, 9));
    gp.set_region("heap", Buffer::pattern(50'000, 10));
    dump_size = co_await Blcr::dump(gp, "/ckpt/proc.img");
    // Wipe and restore.
    gp.set_region("data", Buffer());
    gp.set_region("heap", Buffer());
    digest_ok = co_await Blcr::restore(gp, "/ckpt/proc.img");
  });
  rig.run_all();
  EXPECT_TRUE(digest_ok);
  // Dump = header block + regions + runtime overhead.
  EXPECT_GE(dump_size, 150'000u + rig.vms[0]->config().process_overhead_bytes);
  auto& gp = *rig.vms[0]->guests()[0];
  EXPECT_EQ(gp.region("data"), Buffer::pattern(100'000, 9));
}

TEST(BlcrTest, DumpIsBiggerThanAppState) {
  // blcr indiscriminately dumps all regions + runtime image; an app-level
  // writer would dump only "data".
  TestRig rig(1);
  rig.mount_fs(0);
  std::uint64_t blcr_size = 0;
  rig.vms[0]->start_guest("proc", [&](vm::GuestProcess& gp) -> Task<> {
    gp.set_region("data", Buffer::phantom(1'000'000));
    gp.set_region("scratch", Buffer::phantom(400'000));  // app would skip
    blcr_size = co_await Blcr::dump(gp, "/ckpt/p.img");
  });
  rig.run_all();
  EXPECT_GT(blcr_size, 1'400'000u);
}

TEST(BlcrTest, PhantomRegionsRoundTrip) {
  TestRig rig(1);
  rig.mount_fs(0);
  bool ok = false;
  rig.vms[0]->start_guest("proc", [&](vm::GuestProcess& gp) -> Task<> {
    gp.set_region("data", Buffer::phantom(2'000'000));
    co_await Blcr::dump(gp, "/ckpt/p.img");
    gp.set_region("data", Buffer());
    ok = co_await Blcr::restore(gp, "/ckpt/p.img");
  });
  rig.run_all();
  EXPECT_TRUE(ok);
  EXPECT_EQ(rig.vms[0]->guests()[0]->region("data").size(), 2'000'000u);
}

TEST(CoordinatedTest, ProtocolOrdersDumpSyncSnapshot) {
  TestRig rig(2);
  rig.mount_fs(0);
  rig.mount_fs(1);
  std::vector<std::string> events;
  for (int r = 0; r < 2; ++r) {
    rig.vms[static_cast<std::size_t>(r)]->start_guest(
        "rank", [&rig, &events, r](vm::GuestProcess& gp) -> Task<> {
          rig.world->register_rank(r, &gp);
          auto comm = rig.world->comm(r);
          CoordinatedHooks hooks;
          hooks.vm_leader = true;  // one rank per VM here
          hooks.fs = gp.vm().fs();
          hooks.dump = [&gp, &events, r]() -> Task<> {
            co_await Blcr::dump(gp, "/ckpt/rank.img");
            events.push_back("dump" + std::to_string(r));
          };
          hooks.request_disk_snapshot = [&events, r]() -> Task<> {
            events.push_back("snap" + std::to_string(r));
            co_return;
          };
          gp.set_region("data", Buffer::pattern(10'000, 5));
          co_await coordinated_checkpoint(comm, hooks);
          events.push_back("resume" + std::to_string(r));
        });
  }
  rig.run_all();
  ASSERT_EQ(events.size(), 6u);
  // All dumps strictly before all snapshots, all snapshots before resumes.
  auto index_of = [&](const std::string& e) {
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (events[i] == e) return i;
    }
    return events.size();
  };
  for (int r = 0; r < 2; ++r) {
    EXPECT_LT(index_of("dump" + std::to_string(r)),
              index_of("snap0") + index_of("snap1"));
    EXPECT_LT(index_of("snap" + std::to_string(r)),
              std::min(index_of("resume0"), index_of("resume1")) + 6);
  }
  // FS was synced: no dirty pages remain on either VM.
  EXPECT_FALSE(rig.vms[0]->fs()->dirty());
  EXPECT_FALSE(rig.vms[1]->fs()->dirty());
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

/// Runs `body(rank, comm)` on every rank of a fresh world of size n.
template <typename Body>
void run_ranks(std::size_t n, Body body) {
  TestRig rig(n);
  for (std::size_t i = 0; i < n; ++i) {
    rig.vms[i]->start_guest(common::strf("r%zu", i),
                            [&rig, i, body](vm::GuestProcess& gp) -> Task<> {
      rig.world->register_rank(static_cast<int>(i), &gp);
      auto comm = rig.world->comm(static_cast<int>(i));
      co_await body(static_cast<int>(i), comm);
    });
  }
  rig.run_all();
}

class CollectiveSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CollectiveSizeTest, BcastDeliversRootPayloadToAllRanks) {
  const std::size_t n = GetParam();
  std::vector<Buffer> got(n);
  run_ranks(n, [&got](int rank, MpiWorld::Comm comm) -> Task<> {
    Buffer data;
    if (rank == 2 % comm.size()) data = Buffer::pattern(5'000, 77);
    co_await comm.bcast(data, 2 % comm.size());
    got[static_cast<std::size_t>(rank)] = std::move(data);
  });
  for (const Buffer& b : got) EXPECT_EQ(b, Buffer::pattern(5'000, 77));
}

TEST_P(CollectiveSizeTest, ReduceSumAccumulatesAtRoot) {
  const std::size_t n = GetParam();
  std::vector<double> at_root;
  run_ranks(n, [&at_root, n](int rank, MpiWorld::Comm comm) -> Task<> {
    std::vector<double> mine;
    mine.push_back(static_cast<double>(rank + 1));
    mine.push_back(1.0);
    std::vector<double> out = co_await comm.reduce_sum(std::move(mine), 0);
    if (rank == 0) at_root = std::move(out);
    (void)n;
  });
  ASSERT_EQ(at_root.size(), 2u);
  const double expect = static_cast<double>(n * (n + 1)) / 2.0;
  EXPECT_DOUBLE_EQ(at_root[0], expect);
  EXPECT_DOUBLE_EQ(at_root[1], static_cast<double>(n));
}

TEST_P(CollectiveSizeTest, AllreduceSumAgreesEverywhere) {
  const std::size_t n = GetParam();
  std::vector<std::vector<double>> got(n);
  run_ranks(n, [&got](int rank, MpiWorld::Comm comm) -> Task<> {
    std::vector<double> mine;
    mine.push_back(static_cast<double>(rank));
    mine.push_back(2.0);
    got[static_cast<std::size_t>(rank)] =
        co_await comm.allreduce_sum(std::move(mine));
  });
  const double expect0 = static_cast<double>(n * (n - 1)) / 2.0;
  for (const auto& v : got) {
    ASSERT_EQ(v.size(), 2u);
    EXPECT_DOUBLE_EQ(v[0], expect0);
    EXPECT_DOUBLE_EQ(v[1], 2.0 * static_cast<double>(n));
  }
}

TEST_P(CollectiveSizeTest, GatherCollectsInRankOrder) {
  const std::size_t n = GetParam();
  std::vector<Buffer> at_root;
  run_ranks(n, [&at_root](int rank, MpiWorld::Comm comm) -> Task<> {
    std::vector<Buffer> out = co_await comm.gather(
        Buffer::pattern(100 + static_cast<std::size_t>(rank), 9), 0);
    if (rank == 0) at_root = std::move(out);
  });
  ASSERT_EQ(at_root.size(), n);
  for (std::size_t r = 0; r < n; ++r) {
    EXPECT_EQ(at_root[r], Buffer::pattern(100 + r, 9));
  }
}

TEST_P(CollectiveSizeTest, ScatterHandsEachRankItsPart) {
  const std::size_t n = GetParam();
  std::vector<Buffer> got(n);
  run_ranks(n, [&got, n](int rank, MpiWorld::Comm comm) -> Task<> {
    std::vector<Buffer> parts;
    if (rank == 0) {
      for (std::size_t r = 0; r < n; ++r)
        parts.push_back(Buffer::pattern(64, 1000 + r));
    }
    got[static_cast<std::size_t>(rank)] =
        co_await comm.scatter(std::move(parts), 0);
  });
  for (std::size_t r = 0; r < n; ++r) {
    EXPECT_EQ(got[r], Buffer::pattern(64, 1000 + r));
  }
}

TEST_P(CollectiveSizeTest, CollectivesComposeInSequence) {
  // bcast -> allreduce -> gather back to back: generation-derived tags must
  // keep the streams separate.
  const std::size_t n = GetParam();
  std::vector<double> sums(n, 0);
  run_ranks(n, [&sums](int rank, MpiWorld::Comm comm) -> Task<> {
    Buffer seed;
    if (rank == 0) seed = Buffer::pattern(256, 5);
    co_await comm.bcast(seed, 0);
    std::vector<double> v(1, static_cast<double>(seed.size()));
    v = co_await comm.allreduce_sum(std::move(v));
    sums[static_cast<std::size_t>(rank)] = v[0];
    (void)co_await comm.gather(Buffer::pattern(16, 1), 0);
    co_await comm.barrier();
  });
  for (std::size_t r = 0; r < n; ++r) {
    EXPECT_DOUBLE_EQ(sums[r], 256.0 * static_cast<double>(sums.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectiveSizeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

TEST(CollectiveTest, ReduceSumRejectsMismatchedLengths) {
  std::exception_ptr error;
  TestRig rig(2);
  rig.vms[0]->start_guest("r0", [&](vm::GuestProcess& gp) -> Task<> {
    rig.world->register_rank(0, &gp);
    auto comm = rig.world->comm(0);
    try {
      std::vector<double> one(1, 1.0);
      (void)co_await comm.reduce_sum(std::move(one), 0);  // rank 1 sends 2
    } catch (const MpiError&) {
      error = std::current_exception();
    }
  });
  rig.vms[1]->start_guest("r1", [&](vm::GuestProcess& gp) -> Task<> {
    rig.world->register_rank(1, &gp);
    auto comm = rig.world->comm(1);
    std::vector<double> two;
    two.push_back(1.0);
    two.push_back(2.0);
    (void)co_await comm.reduce_sum(std::move(two), 0);
  });
  rig.sim.run();
  EXPECT_TRUE(error != nullptr);
}

TEST(CollectiveTest, ScatterAtRootRequiresAllParts) {
  std::exception_ptr error;
  TestRig rig(2);
  rig.vms[0]->start_guest("r0", [&](vm::GuestProcess& gp) -> Task<> {
    rig.world->register_rank(0, &gp);
    auto comm = rig.world->comm(0);
    try {
      std::vector<Buffer> parts;
      parts.push_back(Buffer::pattern(8, 1));
      (void)co_await comm.scatter(std::move(parts), 0);  // one part short
    } catch (const MpiError&) {
      error = std::current_exception();
    }
  });
  rig.vms[1]->start_guest("r1", [&](vm::GuestProcess& gp) -> Task<> {
    rig.world->register_rank(1, &gp);
    // Never receives anything; killed at teardown.
    co_await gp.vm().simulation().delay(3600 * sim::kSecond);
  });
  rig.sim.run();
  EXPECT_TRUE(error != nullptr);
}

}  // namespace
}  // namespace blobcr::mpi
