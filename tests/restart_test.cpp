// Tests for the content-addressed restart data plane: decode-on-read
// through the peer-exchange path (Zero/RLE/Raw chunks restored via a peer
// copy must be bit-exact against a direct repository fetch), a rank joining
// mid-restart, the per-node decoded-chunk cache (decode once per node, not
// once per rank), zero-transfer hole materialization, and the deployment-
// level property that per-instance repository bytes shrink as instances
// share restart content.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/strutil.h"
#include "apps/scenarios.h"
#include "blob/client.h"
#include "core/chunk_cache.h"
#include "core/cloud.h"
#include "core/mirror_device.h"
#include "reduce/reducer.h"
#include "sim/sim.h"

namespace blobcr::core {
namespace {

using common::Buffer;
using sim::Task;

constexpr std::uint64_t kChunk = 4096;
constexpr std::uint64_t kImage = 8 * kChunk;

/// A standalone store whose base image goes through the full reduction
/// pipeline, so its leaves carry every encoding the restart path decodes:
/// Raw (incompressible), Zero (suppressed hole), Rle (compressed run) and a
/// dedup Ref aliasing the Raw chunk.
struct ReducedRig {
  sim::Simulation sim;
  std::unique_ptr<net::Fabric> fabric;
  std::vector<std::unique_ptr<storage::Disk>> disks;
  std::unique_ptr<blob::BlobStore> store;
  std::unique_ptr<reduce::Reducer> reducer;
  blob::BlobId base = 0;
  Buffer content;           // ground-truth logical image
  net::NodeId host_a = 0;   // mirror hosts: the last three nodes
  net::NodeId host_b = 0;
  net::NodeId host_c = 0;

  ReducedRig() {
    const std::size_t n_data = 4;
    const std::size_t total = 2 + 2 + n_data + 3;
    net::Fabric::Config fcfg;
    fcfg.node_count = total;
    fcfg.nic_bandwidth_bps = 100e6;
    fcfg.latency = 100 * sim::kMicrosecond;
    fabric = std::make_unique<net::Fabric>(sim, fcfg);
    blob::BlobStore::Config cfg;
    cfg.version_manager_node = 0;
    cfg.provider_manager_node = 1;
    cfg.metadata_nodes = {2, 3};
    storage::Disk::Config dcfg;
    dcfg.bandwidth_bps = 1e9;
    dcfg.position_cost = sim::kMillisecond;
    for (std::size_t i = 0; i < n_data + 3; ++i) {
      disks.push_back(std::make_unique<storage::Disk>(
          sim, common::strf("d%zu", i), dcfg));
    }
    for (std::size_t i = 0; i < n_data; ++i) {
      cfg.data_providers.push_back(
          {static_cast<net::NodeId>(4 + i), disks[i].get(), 1});
    }
    cfg.default_chunk_size = kChunk;
    cfg.tree_depth = 10;
    store = std::make_unique<blob::BlobStore>(sim, *fabric, cfg);
    host_a = static_cast<net::NodeId>(total - 3);
    host_b = static_cast<net::NodeId>(total - 2);
    host_c = static_cast<net::NodeId>(total - 1);

    reduce::ReductionConfig rcfg;
    rcfg.enabled = true;
    reducer = std::make_unique<reduce::Reducer>(*store, rcfg);

    // chunk 0: incompressible pattern   -> Raw
    // chunk 1: zeros                    -> Zero (metadata-only hole)
    // chunk 2: one repeated byte        -> Rle
    // chunk 3: duplicate of chunk 0     -> Ref (intra-commit dedup)
    // chunks 4..7: distinct patterns    -> Raw
    content = Buffer::pattern(kChunk, 7);
    content.append(Buffer::zeros(kChunk));
    content.append(Buffer::real(
        std::vector<std::byte>(kChunk, std::byte{0x41})));
    content.append(Buffer::pattern(kChunk, 7));
    for (int i = 0; i < 4; ++i) {
      content.append(Buffer::pattern(kChunk, 100 + i));
    }
    run([](ReducedRig* rig) -> Task<> {
      blob::BlobClient client(*rig->store, rig->host_a);
      rig->base = co_await client.create(kChunk);
      std::vector<blob::BlobClient::ExtentSpec> specs{{0, kImage}};
      blob::BlobClient::ExtentReader reader =
          [rig](std::uint64_t off, std::uint64_t len) -> Task<Buffer> {
        co_return rig->content.slice(off, len);
      };
      (void)co_await client.write_extents_via(rig->base, std::move(specs),
                                              &reader, rig->reducer.get());
    }(this));
  }

  std::unique_ptr<MirrorDevice> make_mirror(net::NodeId host,
                                            PrefetchBus* bus = nullptr,
                                            DecodedChunkCache* cache =
                                                nullptr) {
    MirrorDevice::Config cfg;
    cfg.capacity = kImage;
    const std::size_t disk_idx = 4 + (host % 3);
    return std::make_unique<MirrorDevice>(*store, host, *disks[disk_idx],
                                          90 + host, base, 1, cfg, bus,
                                          nullptr, cache);
  }

  void run(Task<> t) {
    auto p = sim.spawn("test", std::move(t));
    sim.run();
    if (p->error()) std::rethrow_exception(p->error());
  }
};

TEST(RestartDataPlaneTest, PeerCopyIsBitExactForZeroRleRawAndRefChunks) {
  ReducedRig rig;
  PrefetchBus bus(rig.sim, 200 * sim::kMicrosecond);
  auto m1 = rig.make_mirror(rig.host_a, &bus);
  auto m2 = rig.make_mirror(rig.host_b, &bus);

  Buffer direct;
  Buffer via_m1;
  Buffer via_m2;
  rig.run([](ReducedRig* r, MirrorDevice* a, MirrorDevice* b, Buffer& d,
             Buffer& o1, Buffer& o2) -> Task<> {
    // Ground truth straight from the repository.
    blob::BlobClient client(*r->store, r->host_c);
    d = co_await client.read(r->base, 1, 0, kImage);
    o1 = co_await a->read(0, kImage);
    co_await r->sim.delay(5 * sim::kSecond);  // hints settle
    o2 = co_await b->read(0, kImage);
  }(&rig, m1.get(), m2.get(), direct, via_m1, via_m2));

  EXPECT_EQ(direct, rig.content);
  EXPECT_EQ(via_m1, rig.content);
  EXPECT_EQ(via_m2, rig.content);
  // m1 paid the repository exactly once per stored chunk (the Ref chunk
  // reuses the Raw chunk's decoded copy; the Zero chunk ships nothing).
  EXPECT_GT(m1->repo_bytes_fetched(), 0u);
  EXPECT_EQ(m1->peer_bytes_fetched(), 0u);
  EXPECT_EQ(m1->zero_bytes_materialized(), kChunk);
  EXPECT_GT(m1->cache_hit_bytes(), 0u);  // Ref chunk: same content key
  // m2 restored bit-exactly without any repository transfer: every stored
  // chunk arrived as a peer copy, the hole cost nothing.
  EXPECT_EQ(m2->repo_bytes_fetched(), 0u);
  EXPECT_GT(m2->peer_bytes_fetched(), 0u);
  EXPECT_EQ(m2->zero_bytes_materialized(), kChunk);
}

TEST(RestartDataPlaneTest, RankJoiningMidRestartIsBitExact) {
  ReducedRig rig;
  PrefetchBus bus(rig.sim, 200 * sim::kMicrosecond);
  auto m1 = rig.make_mirror(rig.host_a, &bus);
  auto m2 = rig.make_mirror(rig.host_b, &bus);

  Buffer via_m2;
  Buffer via_m3;
  std::unique_ptr<MirrorDevice> m3;
  rig.run([](ReducedRig* r, MirrorDevice* a, MirrorDevice* b,
             std::unique_ptr<MirrorDevice>* late, Buffer& o2,
             Buffer& o3) -> Task<> {
    // Two ranks restart; a third joins while their fetches are mid-flight.
    (void)co_await a->read(0, kImage / 2);
    *late = r->make_mirror(r->host_c, a->bus());
    (void)co_await b->read(0, kImage);
    o3 = co_await (*late)->read(0, kImage);
    o2 = co_await b->read(0, kImage);  // second read: local, still exact
  }(&rig, m1.get(), m2.get(), &m3, via_m2, via_m3));

  EXPECT_EQ(via_m2, rig.content);
  EXPECT_EQ(via_m3, rig.content);
  // The late joiner found every already-fetched chunk on a peer.
  EXPECT_GT(m3->peer_bytes_fetched(), 0u);
  EXPECT_LT(m3->repo_bytes_fetched(),
            m1->repo_bytes_fetched() + m2->repo_bytes_fetched() + 1);
}

TEST(RestartDataPlaneTest, NodeCacheDecodesOncePerNode) {
  ReducedRig rig;
  PrefetchBus bus(rig.sim, 200 * sim::kMicrosecond);
  DecodedChunkCache node_cache(64 * common::kMB);
  // Two ranks on the SAME node sharing the node's decoded-chunk cache.
  auto m1 = rig.make_mirror(rig.host_a, &bus, &node_cache);
  auto m2 = rig.make_mirror(rig.host_a, &bus, &node_cache);

  Buffer via_m1;
  Buffer via_m2;
  rig.run([](ReducedRig*, MirrorDevice* a, MirrorDevice* b, Buffer& o1,
             Buffer& o2) -> Task<> {
    o1 = co_await a->read(0, kImage);
    o2 = co_await b->read(0, kImage);
  }(&rig, m1.get(), m2.get(), via_m1, via_m2));

  EXPECT_EQ(via_m1, rig.content);
  EXPECT_EQ(via_m2, rig.content);
  // The second rank materialized every stored chunk from the node cache:
  // no repository fetch, no peer copy, no second decode.
  EXPECT_EQ(m2->repo_bytes_fetched(), 0u);
  EXPECT_EQ(m2->peer_bytes_fetched(), 0u);
  EXPECT_EQ(m2->cache_hit_bytes(), kImage - kChunk);  // all but the hole
}

TEST(RestartDataPlaneTest, ZeroHolesMaterializeWithoutAnyTransfer) {
  ReducedRig rig;
  auto m1 = rig.make_mirror(rig.host_a);
  Buffer got;
  rig.run([](MirrorDevice* m, Buffer& out) -> Task<> {
    out = co_await m->read(kChunk, kChunk);  // the suppressed zero chunk
  }(m1.get(), got));
  EXPECT_EQ(got, Buffer::zeros(kChunk));
  EXPECT_EQ(m1->repo_bytes_fetched(), 0u);
  EXPECT_EQ(m1->peer_bytes_fetched(), 0u);
  EXPECT_EQ(m1->remote_bytes_fetched(), 0u);
  EXPECT_EQ(m1->zero_bytes_materialized(), kChunk);
}

// --- Deployment-level: dedup-aware restart --------------------------------

CloudConfig restart_cfg() {
  CloudConfig cfg;
  cfg.compute_nodes = 8;
  cfg.metadata_nodes = 2;
  cfg.backend = Backend::BlobCR;
  cfg.os = vm::GuestOsConfig::test_tiny();
  cfg.vm.os_ram_bytes = 20 * common::kMB;
  cfg.reduction.enabled = true;
  return cfg;
}

/// Restarting N instances that share most content (clone-shared base image
/// plus a fully-shared dedup'd buffer) must cost the repository far less
/// than N solo restarts: the deployment fetches each shared chunk once and
/// peers the rest, with bit-exact restored state.
TEST(RestartDataPlaneTest, PerInstanceRepoBytesShrinkWithDeploymentSize) {
  apps::SyntheticRun run;
  run.buffer_bytes = 2 * common::kMB;
  run.real_data = true;
  run.shared_fraction = 1.0;  // common input dataset: dedup-heavy
  run.do_restart = true;
  run.restart_shift = 3;

  run.instances = 1;
  Cloud solo_cloud(restart_cfg());
  const apps::RunResult solo =
      apps::run_synthetic(solo_cloud, run, apps::CkptMode::AppLevel);

  run.instances = 3;
  Cloud trio_cloud(restart_cfg());
  const apps::RunResult trio =
      apps::run_synthetic(trio_cloud, run, apps::CkptMode::AppLevel);

  ASSERT_TRUE(solo.verified);
  ASSERT_TRUE(trio.verified);
  ASSERT_GT(solo.restart_repo_bytes, 0u);
  // Peer copies replace repository traffic as the deployment grows.
  EXPECT_GT(trio.restart_peer_bytes, 0u);
  const double solo_per_inst = static_cast<double>(solo.restart_repo_bytes);
  const double trio_per_inst =
      static_cast<double>(trio.restart_repo_bytes) / 3.0;
  EXPECT_LT(trio_per_inst, solo_per_inst);
}

}  // namespace
}  // namespace blobcr::core
